//! The two-phase imputation protocol shared by IIM and every baseline.
//!
//! The paper separates an **offline learning phase** from an **online
//! imputation phase** and stresses that "the offline learning phase only
//! needs to be processed once" (§VI-B3). The protocol mirrors that split:
//!
//! * [`Imputer::fit`] / [`Imputer::fit_targets`] — the offline phase: learn
//!   everything a method needs (neighbor orders, individual models, Gram
//!   accumulators, mixture components, …) from a relation, once.
//! * [`FittedImputer`] — the online phase: an object-safe handle serving
//!   single-tuple queries ([`FittedImputer::impute_one`]), micro-batches
//!   ([`FittedImputer::impute_batch`]), and whole relations
//!   ([`FittedImputer::impute_all`]).
//! * [`Imputer::impute`] — the one-shot convenience reproducing the classic
//!   batch semantics (fit on the relation's incomplete attributes, then fill
//!   it); kept as a blanket method so existing call sites keep working.
//!
//! Two integration styles exist underneath:
//!
//! * Matrix-global methods (SVDimpute, IFC, ILLS, ERACER) implement
//!   [`Imputer`] directly, capturing their learned state in `fit`.
//! * Per-attribute methods implement [`AttrEstimator`] (fit `F → Ax`,
//!   predict queries); [`PerAttributeImputer`] lifts any estimator into an
//!   [`Imputer`], handling feature selection, training-row collection, and
//!   the multiple-missing-attributes loop.

use crate::relation::Relation;
use iim_exec::Pool;
use std::collections::HashMap;
use std::time::Duration;

/// Why an imputation could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImputeError {
    /// No tuple is complete on the feature set plus the target attribute.
    NoTrainingData {
        /// The incomplete attribute being imputed.
        target: usize,
    },
    /// The method cannot run on this relation shape (e.g. SVDimpute on a
    /// single attribute). The paper's tables mark such entries "-".
    Unsupported(String),
    /// A query is missing an attribute the fitted imputer holds no model
    /// for (it was not in the [`Imputer::fit_targets`] target set).
    NotFitted {
        /// The missing attribute without a model.
        target: usize,
    },
    /// A query row's arity does not match the fitted relation's.
    ArityMismatch {
        /// The fitted arity.
        expected: usize,
        /// The query's arity.
        got: usize,
    },
}

impl std::fmt::Display for ImputeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImputeError::NoTrainingData { target } => {
                write!(
                    f,
                    "no complete training tuples for attribute index {target}"
                )
            }
            ImputeError::Unsupported(why) => write!(f, "method not applicable: {why}"),
            ImputeError::NotFitted { target } => {
                write!(f, "no fitted model for attribute index {target}")
            }
            ImputeError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "query arity {got} does not match fitted arity {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ImputeError {}

/// Wall-clock split between the offline learning phase and the online
/// imputation phase (the paper times them separately: "the offline learning
/// phase only needs to be processed once", §VI-B3).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Model learning over complete tuples.
    pub offline: Duration,
    /// Per-query imputation.
    pub online: Duration,
}

impl PhaseTimings {
    /// Offline + online wall clock.
    pub fn total(&self) -> Duration {
        self.offline + self.online
    }
}

impl std::fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "offline {:.4}s + online {:.4}s = {:.4}s",
            self.offline.as_secs_f64(),
            self.online.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

/// A single query tuple: `None` marks the missing cells to impute.
///
/// Matches [`Relation::push_row_opt`] / [`Relation::row_opt`], so relation
/// rows and ad-hoc slices both serve as queries.
pub type RowOpt = [Option<f64>];

/// Validates a query row against the fitted arity and rejects non-finite
/// present values (a relation never contains them, so no model can either).
pub fn validate_query(row: &RowOpt, arity: usize) -> Result<(), ImputeError> {
    if row.len() != arity {
        return Err(ImputeError::ArityMismatch {
            expected: arity,
            got: row.len(),
        });
    }
    if row.iter().flatten().any(|v| !v.is_finite()) {
        return Err(ImputeError::Unsupported(
            "query contains a non-finite present value".into(),
        ));
    }
    Ok(())
}

/// The output of the offline phase: a learned model serving online queries.
///
/// Serving is **stateless**: `impute_one` is a pure function of the fitted
/// state and the query, so the same query always gets the same answer
/// regardless of call order or batching — the contract that lets one fitted
/// model serve millions of queries from many threads (`Send + Sync`).
pub trait FittedImputer: Send + Sync {
    /// Display name of the underlying method (see [`Imputer::name`]).
    fn name(&self) -> &str;

    /// Runtime-typed view of the concrete fitted state, used by the
    /// snapshot layer (`iim-persist`) to reach the fields it serializes.
    ///
    /// The default `None` opts the implementation out of persistence
    /// (saving it returns a typed error instead of panicking); every
    /// fitted type in the workspace lineup overrides this with
    /// `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Arity of the relation the model was fitted on; queries must match.
    fn arity(&self) -> usize;

    /// Online phase: imputes one tuple.
    ///
    /// Returns the completed row: present cells pass through unchanged,
    /// missing cells are filled with the model's prediction. A cell the
    /// method cannot impute (e.g. a non-finite prediction) comes back as
    /// `NaN` — callers that need per-cell presence should check
    /// `is_finite()`, as [`FittedImputer::impute_all`] does.
    fn impute_one(&self, row: &RowOpt) -> Result<Vec<f64>, ImputeError>;

    /// Incremental learning: absorbs one **complete** tuple into the
    /// fitted state, as if it had been part of the fit relation all along
    /// (appended after the original training rows).
    ///
    /// The equivalence contract, property-tested in `tests/streaming.rs`:
    /// absorb-then-impute is **bitwise-equal** to refit-from-scratch for
    /// the running-statistics methods (Mean, GLR) and within a documented
    /// per-cell tolerance for IIM (`iim_core::IIM_ABSORB_TOLERANCE`),
    /// independent of worker count.
    ///
    /// The default returns a typed [`ImputeError::Unsupported`] so
    /// non-incremental methods fail loudly rather than silently serving a
    /// stale model; check [`FittedImputer::can_absorb`] to avoid mutating
    /// anything on such methods.
    fn absorb(&mut self, row: &[f64]) -> Result<(), ImputeError> {
        let _ = row;
        Err(ImputeError::Unsupported(format!(
            "{} does not support incremental learning",
            self.name()
        )))
    }

    /// Whether [`FittedImputer::absorb`] is supported by this fitted model
    /// (`false` by default; overridden by the incremental methods).
    fn can_absorb(&self) -> bool {
        false
    }

    /// Number of tuples absorbed since the fit (or snapshot load replayed
    /// its base container — delta-snapshot replay counts here).
    fn absorbed(&self) -> usize {
        0
    }

    /// Online phase over a micro-batch, preserving order, on the
    /// process-default pool ([`iim_exec::global`]).
    fn impute_batch(&self, rows: &[&RowOpt]) -> Result<Vec<Vec<f64>>, ImputeError> {
        self.impute_batch_on(&iim_exec::global(), rows)
    }

    /// [`FittedImputer::impute_batch`] on an explicit pool.
    ///
    /// Queries are independent and `impute_one` is pure, so the answers
    /// (and the first error in row order, if any) are bitwise-identical for
    /// every worker count.
    fn impute_batch_on(&self, pool: &Pool, rows: &[&RowOpt]) -> Result<Vec<Vec<f64>>, ImputeError> {
        pool.parallel_map_indexed(rows.len(), |i| self.impute_one(rows[i]))
            .into_iter()
            .collect()
    }

    /// Imputes every missing cell of `rel`, reproducing the classic
    /// whole-relation semantics: a copy of `rel` with each incomplete tuple
    /// run through [`FittedImputer::impute_one`] — fanned out on the
    /// process-default pool ([`iim_exec::global`]).
    fn impute_all(&self, rel: &Relation) -> Result<Relation, ImputeError> {
        self.impute_all_on(&iim_exec::global(), rel)
    }

    /// [`FittedImputer::impute_all`] on an explicit pool.
    ///
    /// Incomplete tuples are imputed in parallel and the fills applied in
    /// row order, so the result is bitwise-identical for every worker
    /// count (property-tested per method in `tests/fit_serve.rs`).
    fn impute_all_on(&self, pool: &Pool, rel: &Relation) -> Result<Relation, ImputeError> {
        if rel.arity() != self.arity() {
            return Err(ImputeError::ArityMismatch {
                expected: self.arity(),
                got: rel.arity(),
            });
        }
        let results = pool.parallel_map_indexed(rel.n_rows(), |i| {
            if rel.row_complete(i) {
                None
            } else {
                Some(self.impute_one(&rel.row_opt(i)))
            }
        });
        let mut out = rel.clone();
        for (i, result) in results.into_iter().enumerate() {
            let Some(result) = result else { continue };
            let filled = result?;
            for (j, &v) in filled.iter().enumerate() {
                if rel.is_missing(i, j) && v.is_finite() {
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }
}

/// A missing-value imputation method: the offline half of the protocol.
///
/// `Send + Sync` so whole method objects can be scheduled across worker
/// threads (the bench harness fans experiment cells out on a pool); every
/// method in the workspace is plain configuration data.
pub trait Imputer: Send + Sync {
    /// Display name used in experiment tables (matches the paper, e.g.
    /// "IIM", "kNN", "GLR").
    fn name(&self) -> &str;

    /// Offline phase restricted to the given target attributes: learns the
    /// models needed to impute exactly those attributes.
    ///
    /// Methods that learn one whole-matrix model (SVDimpute, IFC) may
    /// legitimately serve every attribute regardless of `targets`; methods
    /// with per-attribute models return
    /// [`ImputeError::NotFitted`] when queried outside the target set.
    fn fit_targets(
        &self,
        rel: &Relation,
        targets: &[usize],
    ) -> Result<Box<dyn FittedImputer>, ImputeError>;

    /// Offline phase: learns models able to impute **any** attribute of a
    /// later query — the serving configuration. Works on a fully complete
    /// relation (the scenario the batch API could not express).
    ///
    /// Best-effort over attributes: a target without training data (e.g. an
    /// all-missing column in the fit relation) is dropped rather than
    /// failing the whole fit, and only surfaces as
    /// [`ImputeError::NotFitted`] if a query actually needs it. Use
    /// [`Imputer::fit_targets`] when specific attributes are required
    /// up front.
    fn fit(&self, rel: &Relation) -> Result<Box<dyn FittedImputer>, ImputeError> {
        let mut targets: Vec<usize> = (0..rel.arity()).collect();
        loop {
            match self.fit_targets(rel, &targets) {
                Err(ImputeError::NoTrainingData { target })
                    if targets.len() > 1 && targets.contains(&target) =>
                {
                    targets.retain(|&t| t != target);
                }
                other => return other,
            }
        }
    }

    /// One-shot convenience reproducing the classic batch semantics:
    /// fits on the attributes actually missing in `rel`, then fills them.
    fn impute(&self, rel: &Relation) -> Result<Relation, ImputeError> {
        self.fit_targets(rel, &rel.incomplete_attrs())?
            .impute_all(rel)
    }
}

/// Remembered fills for the incomplete tuples seen at fit time.
///
/// Matrix-global methods (SVDimpute, IFC, ILLS, ERACER) impute the fit
/// relation's incomplete tuples *jointly* during the offline phase — the
/// iterations feed on each other's estimates. The cache keys those tuples
/// by exact bit pattern so online serving returns the joint solution for
/// them, while genuinely novel queries take the method's single-query path
/// against the captured state.
#[derive(Debug, Clone, Default)]
pub struct FillCache {
    map: HashMap<Vec<u64>, Vec<(usize, f64)>>,
}

/// Missing cells key as a bit pattern no finite value can take.
const MISSING_KEY: u64 = u64::MAX;

fn cache_key(row: &RowOpt) -> Vec<u64> {
    row.iter()
        .map(|c| c.map_or(MISSING_KEY, f64::to_bits))
        .collect()
}

impl FillCache {
    /// Records, for every incomplete tuple of `original`, the cells that
    /// `filled` (the batch result over `original`) imputed. Tuples the
    /// method left holes in are recorded with those cells absent, so
    /// lookups reproduce the batch behavior exactly.
    pub fn from_batch(original: &Relation, filled: &Relation) -> Self {
        let mut map = HashMap::new();
        for i in 0..original.n_rows() {
            if original.row_complete(i) {
                continue;
            }
            let fills: Vec<(usize, f64)> = original
                .missing_attrs(i)
                .into_iter()
                .filter_map(|j| filled.get(i, j).map(|v| (j, v)))
                .collect();
            map.insert(cache_key(&original.row_opt(i)), fills);
        }
        Self { map }
    }

    /// The fills remembered for a fit-time tuple with this exact pattern.
    pub fn lookup(&self, row: &RowOpt) -> Option<&[(usize, f64)]> {
        self.map.get(&cache_key(row)).map(Vec::as_slice)
    }

    /// All remembered `(bit-pattern key, fills)` entries, sorted by key so
    /// iteration order — and therefore any serialized form — is
    /// deterministic regardless of hash-map internals.
    pub fn entries_sorted(&self) -> Vec<(&[u64], &[(usize, f64)])> {
        let mut entries: Vec<(&[u64], &[(usize, f64)])> = self
            .map
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries
    }

    /// Rebuilds a cache from `(key, fills)` entries produced by
    /// [`FillCache::entries_sorted`] (the snapshot decode path).
    pub fn from_entries(entries: Vec<(Vec<u64>, Vec<(usize, f64)>)>) -> Self {
        Self {
            map: entries.into_iter().collect(),
        }
    }

    /// Number of remembered tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no tuples were incomplete at fit time.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Applies remembered fills onto a completed-row buffer (missing cells
    /// initialized to `NaN`), returning whether the row was remembered.
    pub fn apply(&self, row: &RowOpt, out: &mut [f64]) -> bool {
        match self.lookup(row) {
            Some(fills) => {
                for &(j, v) in fills {
                    out[j] = v;
                }
                true
            }
            None => false,
        }
    }
}

/// Expands a query into a completed-row buffer: present cells pass
/// through, missing cells start as `NaN` for the method to fill.
pub fn completed_row(row: &RowOpt) -> Vec<f64> {
    row.iter().map(|c| c.unwrap_or(f64::NAN)).collect()
}

/// How the complete attribute set `F` is chosen for a target attribute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FeatureSelection {
    /// `F = R \ {Ax}` — the paper's default.
    #[default]
    AllOthers,
    /// The first `k` non-target attributes in schema order (the Figure 4/5
    /// protocol: "|F| = 2 denotes F = {A1, A2}").
    FirstK(usize),
    /// An explicit attribute list (must not contain the target).
    Fixed(Vec<usize>),
}

impl FeatureSelection {
    /// Resolves to concrete attribute indices for `target` out of `m`.
    pub fn resolve(&self, m: usize, target: usize) -> Vec<usize> {
        match self {
            FeatureSelection::AllOthers => (0..m).filter(|&j| j != target).collect(),
            FeatureSelection::FirstK(k) => (0..m).filter(|&j| j != target).take(*k).collect(),
            FeatureSelection::Fixed(attrs) => {
                assert!(
                    !attrs.contains(&target),
                    "feature set must not contain the target attribute"
                );
                attrs.clone()
            }
        }
    }
}

/// One per-attribute imputation task: learn `F → target` from `train_rows`.
#[derive(Debug)]
pub struct AttrTask<'a> {
    /// The full relation (complete and incomplete tuples).
    pub rel: &'a Relation,
    /// Complete attribute indices `F`.
    pub features: Vec<usize>,
    /// The incomplete attribute `Ax`.
    pub target: usize,
    /// Rows complete on `F ∪ {target}` — the paper's `r`.
    pub train_rows: Vec<u32>,
}

impl<'a> AttrTask<'a> {
    /// Builds the task, collecting the training rows.
    pub fn new(rel: &'a Relation, features: Vec<usize>, target: usize) -> Self {
        let mut all = features.clone();
        all.push(target);
        let train_rows: Vec<u32> = (0..rel.n_rows())
            .filter(|&i| rel.row_complete_on(i, &all))
            .map(|i| i as u32)
            .collect();
        Self {
            rel,
            features,
            target,
            train_rows,
        }
    }

    /// Number of training tuples `n = |r|`.
    pub fn n_train(&self) -> usize {
        self.train_rows.len()
    }

    /// Gathers the feature vector of `row` into `out`.
    pub fn feature_vec(&self, row: usize, out: &mut Vec<f64>) {
        self.rel.gather(row, &self.features, out);
    }

    /// Target value of training row `row`.
    pub fn target_value(&self, row: usize) -> f64 {
        self.rel.value(row, self.target)
    }

    /// Materializes the training design: `(X rows, y)` in train-row order.
    pub fn training_matrix(&self) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::with_capacity(self.train_rows.len());
        let mut ys = Vec::with_capacity(self.train_rows.len());
        let mut buf = Vec::new();
        for &r in &self.train_rows {
            self.feature_vec(r as usize, &mut buf);
            xs.push(buf.clone());
            ys.push(self.target_value(r as usize));
        }
        (xs, ys)
    }

    /// Running feature-column sums over the training rows, accumulated in
    /// train-row order — the state behind [`AttrTask::feature_means`] that
    /// incremental absorbs extend one row at a time (same addition order ⇒
    /// same bits as a refit).
    pub fn feature_mean_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.features.len()];
        for &r in &self.train_rows {
            let row = self.rel.row_raw(r as usize);
            for (slot, &j) in sums.iter_mut().zip(&self.features) {
                *slot += row[j];
            }
        }
        sums
    }

    /// Column means of the features over the training rows — the fallback
    /// for queries missing one of their *feature* values.
    pub fn feature_means(&self) -> Vec<f64> {
        let mut means = self.feature_mean_sums();
        for slot in &mut means {
            *slot /= self.n_train().max(1) as f64;
        }
        means
    }
}

/// A fitted per-attribute model.
///
/// `Send + Sync` so a fitted imputer can serve queries from many threads;
/// `predict` must be a pure function of the model and the query.
pub trait AttrPredictor: Send + Sync {
    /// Predicts the target from a feature vector in `AttrTask::features`
    /// order.
    fn predict(&self, x: &[f64]) -> f64;

    /// Runtime-typed view of the concrete predictor, used by the snapshot
    /// layer (`iim-persist`). The default `None` opts out of persistence
    /// (closures, ad-hoc test predictors); every persistable predictor in
    /// the workspace overrides this with `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Incremental learning: absorbs one training example `(x, y)` with
    /// `x` in `AttrTask::features` order, as if it had been appended to
    /// the fit-time training rows. Defaults to a typed error; see
    /// [`FittedImputer::absorb`] for the equivalence contract.
    fn absorb(&mut self, x: &[f64], y: f64) -> Result<(), ImputeError> {
        let _ = (x, y);
        Err(ImputeError::Unsupported(
            "predictor does not support incremental learning".into(),
        ))
    }

    /// Whether [`AttrPredictor::absorb`] is supported (`false` by
    /// default, so closures and ad-hoc predictors are covered).
    fn can_absorb(&self) -> bool {
        false
    }
}

impl<F: Fn(&[f64]) -> f64 + Send + Sync> AttrPredictor for F {
    fn predict(&self, x: &[f64]) -> f64 {
        self(x)
    }
}

/// A per-attribute imputation method (the `g : F → Ax` of Figure 2).
pub trait AttrEstimator {
    /// Display name (see [`Imputer::name`]).
    fn name(&self) -> &str;

    /// Fits a predictor on the task's training rows.
    ///
    /// Returns an error when the method cannot model the task (no training
    /// rows, unsupported shape).
    fn fit(&self, task: &AttrTask<'_>) -> Result<Box<dyn AttrPredictor>, ImputeError>;
}

/// Lifts an [`AttrEstimator`] into a whole-relation [`Imputer`].
///
/// `fit_targets` builds an [`AttrTask`] per target attribute with the
/// configured [`FeatureSelection`] and fits the estimator once per target;
/// the resulting [`FittedImputer`] predicts any number of queries online.
/// Queries missing one of their *feature* values (tuples with several
/// missing attributes) have those features replaced by the training-column
/// mean — the paper sidesteps this case ("multiple incomplete attributes
/// could be addressed one by one"); the mean-substitution keeps the driver
/// total.
pub struct PerAttributeImputer<E> {
    estimator: E,
    features: FeatureSelection,
}

impl<E: AttrEstimator> PerAttributeImputer<E> {
    /// Wraps `estimator` with the paper-default `F = R \ {Ax}`.
    pub fn new(estimator: E) -> Self {
        Self {
            estimator,
            features: FeatureSelection::AllOthers,
        }
    }

    /// Wraps with an explicit feature-selection policy.
    pub fn with_features(estimator: E, features: FeatureSelection) -> Self {
        Self {
            estimator,
            features,
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

/// One fitted target attribute of a [`FittedPerAttribute`].
///
/// Fields are public so the snapshot layer (`iim-persist`) can encode and
/// reconstruct fitted drivers without an intermediate builder type.
pub struct FittedAttrModel {
    /// Feature attribute indices `F` (query gather order).
    pub features: Vec<usize>,
    /// Training-column means, for missing-feature fallback.
    pub means: Vec<f64>,
    /// Running feature-column sums behind `means`, extended by absorbs so
    /// the fallback means track the growing training set bitwise (same
    /// addition order as [`AttrTask::feature_mean_sums`] on a refit).
    pub mean_sums: Vec<f64>,
    /// Number of training rows behind `mean_sums`.
    pub mean_count: usize,
    /// The fitted per-attribute predictor.
    pub predictor: Box<dyn AttrPredictor>,
}

/// The fitted form of a [`PerAttributeImputer`]: one predictor per target
/// attribute (for IIM, each predictor is an `IimModel` — the individual
/// models Φ plus the training tuples, the paper's offline-phase output).
pub struct FittedPerAttribute {
    name: String,
    arity: usize,
    models: Vec<Option<FittedAttrModel>>,
    /// Tuples absorbed since fit / snapshot load (not persisted in the
    /// base container: delta-snapshot replay recounts it at load).
    absorbed: usize,
}

impl FittedPerAttribute {
    /// Reassembles a fitted driver from its parts (the snapshot decode
    /// path). `models` must have one slot per attribute (`arity` slots);
    /// `None` marks targets without a fitted model.
    pub fn from_parts(name: String, arity: usize, models: Vec<Option<FittedAttrModel>>) -> Self {
        assert_eq!(models.len(), arity, "one model slot per attribute");
        Self {
            name,
            arity,
            models,
            absorbed: 0,
        }
    }

    /// The per-target models, indexed by attribute (the snapshot encode
    /// path).
    pub fn models(&self) -> &[Option<FittedAttrModel>] {
        &self.models
    }
}

impl FittedImputer for FittedPerAttribute {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn impute_one(&self, row: &RowOpt) -> Result<Vec<f64>, ImputeError> {
        validate_query(row, self.arity)?;
        let mut out = completed_row(row);
        // Per-thread feature buffer: serving a query gathers one feature
        // vector per missing attribute, so the buffer is hot-path scratch
        // (see `iim_exec::with_tls_scratch` for the take/put contract).
        thread_local! {
            static FEATURE_BUF: std::cell::Cell<Vec<f64>> =
                const { std::cell::Cell::new(Vec::new()) };
        }
        iim_exec::with_tls_scratch(&FEATURE_BUF, |fbuf| {
            for j in 0..self.arity {
                if row[j].is_some() {
                    continue;
                }
                let model = self.models[j]
                    .as_ref()
                    .ok_or(ImputeError::NotFitted { target: j })?;
                fbuf.clear();
                for (idx, &fj) in model.features.iter().enumerate() {
                    fbuf.push(row[fj].unwrap_or(model.means[idx]));
                }
                let pred = model.predictor.predict(fbuf);
                if pred.is_finite() {
                    out[j] = pred;
                }
            }
            Ok(out)
        })
    }

    fn can_absorb(&self) -> bool {
        self.models
            .iter()
            .flatten()
            .all(|m| m.predictor.can_absorb())
    }

    fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Absorbs a complete tuple into **every** fitted target model: each
    /// per-attribute predictor learns `(features of row, row[target])` and
    /// the missing-feature fallback means are extended — exactly the rows
    /// a refit on the grown relation would have trained on.
    ///
    /// Failure is atomic with respect to *support*: if any fitted target's
    /// predictor cannot learn incrementally, nothing is mutated. A
    /// predictor-internal absorb error (rare; e.g. a degenerate update)
    /// can leave earlier targets absorbed — callers treat the model as
    /// suspect and refit.
    fn absorb(&mut self, row: &[f64]) -> Result<(), ImputeError> {
        if row.len() != self.arity {
            return Err(ImputeError::ArityMismatch {
                expected: self.arity,
                got: row.len(),
            });
        }
        if row.iter().any(|v| !v.is_finite()) {
            return Err(ImputeError::Unsupported(
                "absorb requires a complete tuple of finite values".into(),
            ));
        }
        if !self.can_absorb() {
            return Err(ImputeError::Unsupported(format!(
                "{} does not support incremental learning",
                self.name
            )));
        }
        let mut x = Vec::new();
        for (j, slot) in self.models.iter_mut().enumerate() {
            let Some(model) = slot else { continue };
            x.clear();
            x.extend(model.features.iter().map(|&fj| row[fj]));
            model.predictor.absorb(&x, row[j])?;
            for (slot, &fj) in model.mean_sums.iter_mut().zip(&model.features) {
                *slot += row[fj];
            }
            model.mean_count += 1;
            for (mean, &sum) in model.means.iter_mut().zip(&model.mean_sums) {
                *mean = sum / model.mean_count as f64;
            }
        }
        self.absorbed += 1;
        Ok(())
    }
}

impl<E: AttrEstimator + Send + Sync> Imputer for PerAttributeImputer<E> {
    fn name(&self) -> &str {
        self.estimator.name()
    }

    /// Target attributes are independent per-attribute fits, so the
    /// offline phase fans them out on the process-default pool (each item
    /// is a whole model fit, heavy enough to parallelize from two targets
    /// up). Errors surface exactly as in a sequential fit: the first
    /// failing target in `targets` order wins.
    fn fit_targets(
        &self,
        rel: &Relation,
        targets: &[usize],
    ) -> Result<Box<dyn FittedImputer>, ImputeError> {
        let m = rel.arity();
        let pool = iim_exec::global().with_serial_cutoff(2);
        let fitted = pool.parallel_map_indexed(targets.len(), |ti| {
            let target = targets[ti];
            let features = self.features.resolve(m, target);
            let task = AttrTask::new(rel, features.clone(), target);
            if task.n_train() == 0 {
                return Err(ImputeError::NoTrainingData { target });
            }
            let mean_sums = task.feature_mean_sums();
            let mean_count = task.n_train();
            let means = mean_sums.iter().map(|s| s / mean_count as f64).collect();
            let predictor = self.estimator.fit(&task)?;
            Ok((
                target,
                FittedAttrModel {
                    features,
                    means,
                    mean_sums,
                    mean_count,
                    predictor,
                },
            ))
        });
        let mut models: Vec<Option<FittedAttrModel>> = (0..m).map(|_| None).collect();
        for result in fitted {
            let (target, model) = result?;
            models[target] = Some(model);
        }
        Ok(Box::new(FittedPerAttribute {
            name: self.estimator.name().to_string(),
            arity: m,
            models,
            absorbed: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Schema;

    /// Predicts the training-target mean — enough to exercise the driver.
    struct MeanEstimator;

    impl AttrEstimator for MeanEstimator {
        fn name(&self) -> &str {
            "TestMean"
        }
        fn fit(&self, task: &AttrTask<'_>) -> Result<Box<dyn AttrPredictor>, ImputeError> {
            let sum: f64 = task
                .train_rows
                .iter()
                .map(|&r| task.target_value(r as usize))
                .sum();
            let mean = sum / task.n_train() as f64;
            Ok(Box::new(move |_x: &[f64]| mean))
        }
    }

    fn rel_with_missing() -> Relation {
        let mut r = Relation::with_capacity(Schema::anonymous(3), 5);
        r.push_row(&[1.0, 10.0, 100.0]);
        r.push_row(&[2.0, 20.0, 200.0]);
        r.push_row(&[3.0, 30.0, 300.0]);
        r.push_row_opt(&[Some(4.0), None, Some(400.0)]);
        r.push_row_opt(&[Some(5.0), Some(50.0), None]);
        r
    }

    #[test]
    fn feature_selection_resolution() {
        assert_eq!(FeatureSelection::AllOthers.resolve(4, 1), vec![0, 2, 3]);
        assert_eq!(FeatureSelection::FirstK(2).resolve(4, 0), vec![1, 2]);
        assert_eq!(FeatureSelection::FirstK(2).resolve(4, 1), vec![0, 2]);
        assert_eq!(
            FeatureSelection::Fixed(vec![3, 0]).resolve(4, 1),
            vec![3, 0]
        );
    }

    #[test]
    #[should_panic(expected = "must not contain")]
    fn fixed_features_reject_target() {
        FeatureSelection::Fixed(vec![1]).resolve(3, 1);
    }

    #[test]
    fn attr_task_training_rows() {
        let rel = rel_with_missing();
        let task = AttrTask::new(&rel, vec![0, 2], 1);
        // Rows 0,1,2 are fully complete; row 4 is complete on {0,2,1}? No:
        // row 4 misses attr 2 → excluded. Row 3 misses the target.
        assert_eq!(task.train_rows, vec![0, 1, 2]);
        assert_eq!(task.n_train(), 3);
        let (xs, ys) = task.training_matrix();
        assert_eq!(xs[1], vec![2.0, 200.0]);
        assert_eq!(ys, vec![10.0, 20.0, 30.0]);
        assert_eq!(task.feature_means(), vec![2.0, 200.0]);
    }

    #[test]
    fn driver_fills_all_missing() {
        let rel = rel_with_missing();
        let imputer = PerAttributeImputer::new(MeanEstimator);
        assert_eq!(imputer.name(), "TestMean");
        let out = imputer.impute(&rel).unwrap();
        assert_eq!(out.missing_count(), 0);
        assert_eq!(out.get(3, 1), Some(20.0)); // mean of 10,20,30
        assert_eq!(out.get(4, 2), Some(200.0)); // mean of 100,200,300

        // Present cells untouched.
        assert_eq!(out.get(0, 0), Some(1.0));
    }

    #[test]
    fn fit_then_serve_single_queries() {
        let rel = rel_with_missing();
        let fitted = PerAttributeImputer::new(MeanEstimator).fit(&rel).unwrap();
        assert_eq!(fitted.name(), "TestMean");
        assert_eq!(fitted.arity(), 3);
        // A novel single-tuple query: attribute 1 missing.
        let row = fitted.impute_one(&[Some(9.0), None, Some(900.0)]).unwrap();
        assert_eq!(row, vec![9.0, 20.0, 900.0]);
        // Micro-batch preserves order.
        let q1: Vec<Option<f64>> = vec![Some(9.0), None, Some(900.0)];
        let q2: Vec<Option<f64>> = vec![None, Some(50.0), Some(100.0)];
        let batch = fitted.impute_batch(&[&q1, &q2]).unwrap();
        assert_eq!(batch[0][1], 20.0);
        assert_eq!(batch[1][0], 2.0);
    }

    #[test]
    fn fit_on_complete_relation_serves_later_queries() {
        let mut rel = Relation::with_capacity(Schema::anonymous(2), 3);
        rel.push_row(&[1.0, 10.0]);
        rel.push_row(&[2.0, 20.0]);
        rel.push_row(&[3.0, 30.0]);
        // The serving scenario the batch API could not express: nothing is
        // missing at fit time.
        let fitted = PerAttributeImputer::new(MeanEstimator).fit(&rel).unwrap();
        let row = fitted.impute_one(&[Some(7.0), None]).unwrap();
        assert_eq!(row, vec![7.0, 20.0]);
    }

    #[test]
    fn fit_targets_limits_served_attributes() {
        let rel = rel_with_missing();
        let fitted = PerAttributeImputer::new(MeanEstimator)
            .fit_targets(&rel, &[1])
            .unwrap();
        assert!(fitted.impute_one(&[Some(1.0), None, Some(2.0)]).is_ok());
        assert_eq!(
            fitted
                .impute_one(&[Some(1.0), Some(2.0), None])
                .unwrap_err(),
            ImputeError::NotFitted { target: 2 }
        );
    }

    #[test]
    fn serving_fit_drops_unservable_targets() {
        // Column 2 is entirely missing. Under FirstK(1) it is unfittable
        // (nothing is complete on {A1, A3}) but also unused as a feature
        // by the other targets, so the serving `fit` drops it instead of
        // failing the whole fit; it only surfaces when a query needs it.
        let mut rel = Relation::with_capacity(Schema::anonymous(3), 3);
        rel.push_row_opt(&[Some(1.0), Some(10.0), None]);
        rel.push_row_opt(&[Some(2.0), Some(20.0), None]);
        rel.push_row_opt(&[Some(3.0), Some(30.0), None]);
        let imputer =
            PerAttributeImputer::with_features(MeanEstimator, FeatureSelection::FirstK(1));
        // Strict per-target fitting still errors…
        assert_eq!(
            imputer.fit_targets(&rel, &[0, 1, 2]).err(),
            Some(ImputeError::NoTrainingData { target: 2 })
        );
        // …while the serving fit serves what it can.
        let fitted = imputer.fit(&rel).unwrap();
        let row = fitted.impute_one(&[None, Some(20.0), Some(5.0)]).unwrap();
        assert_eq!(row[0], 2.0);
        assert_eq!(
            fitted
                .impute_one(&[Some(1.0), Some(2.0), None])
                .unwrap_err(),
            ImputeError::NotFitted { target: 2 }
        );
    }

    #[test]
    fn query_validation() {
        let rel = rel_with_missing();
        let fitted = PerAttributeImputer::new(MeanEstimator).fit(&rel).unwrap();
        assert_eq!(
            fitted.impute_one(&[Some(1.0), None]).unwrap_err(),
            ImputeError::ArityMismatch {
                expected: 3,
                got: 2
            }
        );
        assert!(matches!(
            fitted.impute_one(&[Some(f64::NAN), None, Some(1.0)]),
            Err(ImputeError::Unsupported(_))
        ));
    }

    #[test]
    fn driver_mean_substitutes_missing_features() {
        let mut rel = Relation::with_capacity(Schema::anonymous(3), 4);
        rel.push_row(&[1.0, 10.0, 100.0]);
        rel.push_row(&[2.0, 20.0, 200.0]);
        rel.push_row(&[3.0, 30.0, 300.0]);
        // Tuple missing two attributes.
        rel.push_row_opt(&[None, None, Some(250.0)]);
        let imputer = PerAttributeImputer::new(MeanEstimator);
        let out = imputer.impute(&rel).unwrap();
        assert_eq!(out.missing_count(), 0);
        assert_eq!(out.get(3, 0), Some(2.0));
        assert_eq!(out.get(3, 1), Some(20.0));
    }

    #[test]
    fn no_training_data_is_an_error() {
        let mut rel = Relation::with_capacity(Schema::anonymous(2), 2);
        rel.push_row_opt(&[Some(1.0), None]);
        rel.push_row_opt(&[Some(2.0), None]);
        let imputer = PerAttributeImputer::new(MeanEstimator);
        assert_eq!(
            imputer.impute(&rel).unwrap_err(),
            ImputeError::NoTrainingData { target: 1 }
        );
    }

    #[test]
    fn phase_timings_total_and_display() {
        let t = PhaseTimings {
            offline: Duration::from_millis(1500),
            online: Duration::from_millis(250),
        };
        assert_eq!(t.total(), Duration::from_millis(1750));
        assert_eq!(t.to_string(), "offline 1.5000s + online 0.2500s = 1.7500s");
    }

    #[test]
    fn fill_cache_round_trips_batch_fills() {
        let original = rel_with_missing();
        let mut filled = original.clone();
        filled.set(3, 1, 42.0);
        // Row 4 deliberately left unfilled: the cache must remember that.
        let cache = FillCache::from_batch(&original, &filled);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());

        let mut out = completed_row(&original.row_opt(3));
        assert!(cache.apply(&original.row_opt(3), &mut out));
        assert_eq!(out[1], 42.0);

        let mut out = completed_row(&original.row_opt(4));
        assert!(cache.apply(&original.row_opt(4), &mut out));
        assert!(out[2].is_nan(), "unfilled cell must stay missing");

        // A novel pattern misses the cache.
        assert!(cache.lookup(&[Some(8.0), None, Some(1.0)]).is_none());
    }
}
