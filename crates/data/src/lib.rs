#![allow(clippy::needless_range_loop)] // index loops are the idiom in these dense numeric kernels

//! Relational data substrate for the `iim` workspace.
//!
//! The IIM paper operates on a relation `r` of `n` tuples over `m` numerical
//! attributes, with incomplete tuples `tx` missing a value on an attribute
//! `Ax` (Section II). This crate provides that model plus everything the
//! evaluation protocol (Section VI-A) needs:
//!
//! * [`Schema`] / [`Relation`] — row-major numerical relations where a
//!   missing cell is a `NaN` sentinel behind a checked API.
//! * [`csv`] — plain-text round-tripping (missing cells serialize empty).
//! * [`stats`] — column statistics and z-score / min-max normalization.
//! * [`inject`] — the paper's missing-value injection protocols: random
//!   tuples with one missing attribute (§VI-B1), per-attribute (§VI-B2,
//!   Table VI), and clustered incomplete tuples (§VI-B5, Figure 8).
//! * [`metrics`] — RMS error (the paper's accuracy criterion), MAE, and the
//!   coefficient of determination used by the R²_S / R²_H diagnostics.
//! * [`task`] — the two-phase protocol shared by IIM and all thirteen
//!   baselines: [`Imputer::fit`] (offline learning) producing a
//!   [`FittedImputer`] (online serving), the per-attribute estimator
//!   protocol, and the driver that lifts a per-attribute method into the
//!   protocol.

pub mod csv;
pub mod inject;
pub mod metrics;
pub mod relation;
pub mod stats;
pub mod task;

pub use inject::{GroundTruth, MissingCell};
pub use relation::{paper_fig1, Relation, Schema};
pub use task::{
    AttrEstimator, AttrPredictor, AttrTask, FeatureSelection, FillCache, FittedAttrModel,
    FittedImputer, FittedPerAttribute, ImputeError, Imputer, PerAttributeImputer, PhaseTimings,
    RowOpt,
};
