//! Schemas and relations: the paper's `r` over `R = {A1, …, Am}`.

use std::fmt;

/// Attribute names of a relation; attribute `j` is addressed by its index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
}

impl Schema {
    /// Schema with the given attribute names.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Self {
        Self {
            names: names.into_iter().map(Into::into).collect(),
        }
    }

    /// Anonymous schema `A1..Am` (the paper's default naming).
    pub fn anonymous(m: usize) -> Self {
        Self {
            names: (1..=m).map(|j| format!("A{j}")).collect(),
        }
    }

    /// Number of attributes `m`.
    pub fn arity(&self) -> usize {
        self.names.len()
    }

    /// Name of attribute `j`.
    pub fn name(&self, j: usize) -> &str {
        &self.names[j]
    }

    /// Index of the attribute with the given name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// All attribute names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// A numerical relation with optional missing cells.
///
/// Storage is row-major `f64`; a missing cell is the `NaN` sentinel, only
/// reachable through [`Relation::get`] / [`Relation::is_missing`] so callers
/// never do arithmetic on it by accident. (The paper's `r` contains only
/// complete tuples; here the same type also carries the incomplete tuples
/// `tx`, distinguished by their missing cells.)
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    n: usize,
    values: Vec<f64>,
}

impl PartialEq for Relation {
    /// Bitwise value equality with missing (`NaN`) cells comparing equal —
    /// two relations with the same missing pattern and the same present
    /// values are the same relation.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.n == other.n
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()))
    }
}

impl Relation {
    /// Empty relation with capacity hints.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let m = schema.arity();
        Self {
            schema,
            n: 0,
            values: Vec::with_capacity(rows * m),
        }
    }

    /// Builds a relation from complete row data. Panics on ragged rows or
    /// non-finite values (use [`Relation::push_row_opt`] for missing cells).
    pub fn from_rows(schema: Schema, rows: &[Vec<f64>]) -> Self {
        let mut rel = Self::with_capacity(schema, rows.len());
        for row in rows {
            rel.push_row(row);
        }
        rel
    }

    /// Appends a complete row. Panics on arity mismatch or non-finite input.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        assert!(
            row.iter().all(|v| v.is_finite()),
            "complete rows must be finite; use push_row_opt for missing cells"
        );
        self.values.extend_from_slice(row);
        self.n += 1;
    }

    /// Appends a row where `None` marks a missing cell.
    pub fn push_row_opt(&mut self, row: &[Option<f64>]) {
        assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        for v in row {
            match v {
                Some(x) => {
                    assert!(x.is_finite(), "present cells must be finite");
                    self.values.push(*x);
                }
                None => self.values.push(f64::NAN),
            }
        }
        self.n += 1;
    }

    /// Number of tuples `n`.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Number of attributes `m`.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Value of tuple `i` on attribute `j`, `None` when missing.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let v = self.values[i * self.schema.arity() + j];
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Value of a cell that the caller knows is present.
    ///
    /// Panics (debug) / returns garbage-free NaN (release) when missing —
    /// use [`Relation::get`] if presence is uncertain.
    #[inline]
    pub fn value(&self, i: usize, j: usize) -> f64 {
        let v = self.values[i * self.schema.arity() + j];
        debug_assert!(!v.is_nan(), "cell ({i},{j}) is missing");
        v
    }

    /// True when cell `(i, j)` is missing.
    #[inline]
    pub fn is_missing(&self, i: usize, j: usize) -> bool {
        self.values[i * self.schema.arity() + j].is_nan()
    }

    /// Overwrites cell `(i, j)` with a finite value.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(v.is_finite(), "cell values must be finite");
        let m = self.schema.arity();
        self.values[i * m + j] = v;
    }

    /// Marks cell `(i, j)` missing, returning the previous value if any.
    pub fn clear_cell(&mut self, i: usize, j: usize) -> Option<f64> {
        let m = self.schema.arity();
        let old = self.values[i * m + j];
        self.values[i * m + j] = f64::NAN;
        if old.is_nan() {
            None
        } else {
            Some(old)
        }
    }

    /// Raw row slice (missing cells are NaN). Intended for hot loops that
    /// have already checked completeness; most callers want
    /// [`Relation::get`].
    #[inline]
    pub fn row_raw(&self, i: usize) -> &[f64] {
        let m = self.schema.arity();
        &self.values[i * m..(i + 1) * m]
    }

    /// True when tuple `i` has no missing cell.
    pub fn row_complete(&self, i: usize) -> bool {
        self.row_raw(i).iter().all(|v| !v.is_nan())
    }

    /// True when tuple `i` is complete on every attribute in `attrs`.
    pub fn row_complete_on(&self, i: usize, attrs: &[usize]) -> bool {
        let row = self.row_raw(i);
        attrs.iter().all(|&j| !row[j].is_nan())
    }

    /// Indices of fully complete tuples.
    pub fn complete_rows(&self) -> Vec<u32> {
        (0..self.n)
            .filter(|&i| self.row_complete(i))
            .map(|i| i as u32)
            .collect()
    }

    /// Indices of tuples with at least one missing cell.
    pub fn incomplete_rows(&self) -> Vec<u32> {
        (0..self.n)
            .filter(|&i| !self.row_complete(i))
            .map(|i| i as u32)
            .collect()
    }

    /// Missing attribute indices of tuple `i`.
    pub fn missing_attrs(&self, i: usize) -> Vec<usize> {
        let row = self.row_raw(i);
        (0..self.arity()).filter(|&j| row[j].is_nan()).collect()
    }

    /// Attribute indices with at least one missing cell, in schema order.
    pub fn incomplete_attrs(&self) -> Vec<usize> {
        (0..self.arity())
            .filter(|&j| (0..self.n).any(|i| self.is_missing(i, j)))
            .collect()
    }

    /// Tuple `i` as an optional-value row (`None` marks missing cells) —
    /// the query format of
    /// [`FittedImputer::impute_one`](crate::task::FittedImputer::impute_one).
    pub fn row_opt(&self, i: usize) -> Vec<Option<f64>> {
        self.row_raw(i)
            .iter()
            .map(|&v| if v.is_nan() { None } else { Some(v) })
            .collect()
    }

    /// Total number of missing cells.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// Gathers the values of `attrs` from row `i` into `out`.
    ///
    /// Panics (debug) when any gathered cell is missing.
    #[inline]
    pub fn gather(&self, i: usize, attrs: &[usize], out: &mut Vec<f64>) {
        out.clear();
        let row = self.row_raw(i);
        for &j in attrs {
            debug_assert!(!row[j].is_nan(), "gathering missing cell ({i},{j})");
            out.push(row[j]);
        }
    }

    /// New relation keeping only the given rows (in the given order).
    pub fn select_rows(&self, rows: &[u32]) -> Relation {
        let m = self.arity();
        let mut out = Relation::with_capacity(self.schema.clone(), rows.len());
        for &r in rows {
            out.values.extend_from_slice(self.row_raw(r as usize));
            out.n += 1;
        }
        debug_assert_eq!(out.values.len(), rows.len() * m);
        out
    }

    /// New relation keeping only the given columns (in the given order).
    pub fn select_columns(&self, cols: &[usize]) -> Relation {
        let names: Vec<String> = cols
            .iter()
            .map(|&j| self.schema.name(j).to_string())
            .collect();
        let mut out = Relation::with_capacity(Schema::new(names), self.n);
        for i in 0..self.n {
            let row = self.row_raw(i);
            for &j in cols {
                out.values.push(row[j]);
            }
            out.n += 1;
        }
        out
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Relation {} rows x {} attrs ({:?}), {} missing cells",
            self.n,
            self.arity(),
            self.schema.names(),
            self.missing_count()
        )?;
        let show = self.n.min(8);
        for i in 0..show {
            write!(f, "  t{}: ", i + 1)?;
            for j in 0..self.arity() {
                match self.get(i, j) {
                    Some(v) => write!(f, "{v:>9.3} ")?,
                    None => write!(f, "{:>9} ", "-")?,
                }
            }
            writeln!(f)?;
        }
        if self.n > show {
            writeln!(f, "  … {} more rows", self.n - show)?;
        }
        Ok(())
    }
}

/// The running example of the paper (Figure 1): tuples `t1..t8` on
/// `(A1, A2)`, plus the incomplete `tx` with `tx[A1] = 5` and `tx[A2]`
/// missing (ground truth 1.8). Returned as (complete `r`, `tx` row).
///
/// Exposed here because unit tests across the workspace pin the paper's
/// worked examples (Examples 2–6) against this data.
pub fn paper_fig1() -> (Relation, Vec<Option<f64>>) {
    let rows = vec![
        vec![0.0, 5.8],
        vec![0.8, 4.6],
        vec![1.9, 3.8],
        vec![2.9, 3.2],
        vec![6.8, 3.0],
        vec![7.5, 4.1],
        vec![8.2, 4.8],
        vec![9.0, 5.5],
    ];
    let rel = Relation::from_rows(Schema::anonymous(2), &rows);
    let tx = vec![Some(5.0), None];
    (rel, tx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let s = Schema::anonymous(3);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.name(0), "A1");
        assert_eq!(s.index_of("A3"), Some(2));
        assert_eq!(s.index_of("Z"), None);
        let named = Schema::new(vec!["temp", "humidity"]);
        assert_eq!(named.name(1), "humidity");
    }

    #[test]
    fn push_and_get() {
        let mut r = Relation::with_capacity(Schema::anonymous(2), 2);
        r.push_row(&[1.0, 2.0]);
        r.push_row_opt(&[Some(3.0), None]);
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.get(0, 1), Some(2.0));
        assert_eq!(r.get(1, 1), None);
        assert!(r.is_missing(1, 1));
        assert!(!r.row_complete(1));
        assert!(r.row_complete(0));
        assert_eq!(r.missing_attrs(1), vec![1]);
        assert_eq!(r.missing_count(), 1);
        assert_eq!(r.complete_rows(), vec![0]);
        assert_eq!(r.incomplete_rows(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_row_rejects_nan() {
        let mut r = Relation::with_capacity(Schema::anonymous(1), 1);
        r.push_row(&[f64::NAN]);
    }

    #[test]
    fn set_and_clear() {
        let mut r = Relation::from_rows(Schema::anonymous(2), &[vec![1.0, 2.0]]);
        assert_eq!(r.clear_cell(0, 0), Some(1.0));
        assert!(r.is_missing(0, 0));
        assert_eq!(r.clear_cell(0, 0), None);
        r.set(0, 0, 9.0);
        assert_eq!(r.get(0, 0), Some(9.0));
    }

    #[test]
    fn gather_and_subsets() {
        let r = Relation::from_rows(
            Schema::anonymous(3),
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        );
        let mut buf = Vec::new();
        r.gather(1, &[2, 0], &mut buf);
        assert_eq!(buf, vec![6.0, 4.0]);

        let rows = r.select_rows(&[1]);
        assert_eq!(rows.n_rows(), 1);
        assert_eq!(rows.get(0, 0), Some(4.0));

        let cols = r.select_columns(&[2, 1]);
        assert_eq!(cols.arity(), 2);
        assert_eq!(cols.schema().name(0), "A3");
        assert_eq!(cols.get(0, 0), Some(3.0));
    }

    #[test]
    fn row_complete_on_subset() {
        let mut r = Relation::with_capacity(Schema::anonymous(3), 1);
        r.push_row_opt(&[Some(1.0), None, Some(3.0)]);
        assert!(r.row_complete_on(0, &[0, 2]));
        assert!(!r.row_complete_on(0, &[0, 1]));
    }

    #[test]
    fn fig1_data_shape() {
        let (r, tx) = paper_fig1();
        assert_eq!(r.n_rows(), 8);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(4, 0), Some(6.8)); // t5[A1]
        assert_eq!(tx[0], Some(5.0));
        assert_eq!(tx[1], None);
    }
}
