//! Missing-value injection: the paper's evaluation protocol (§VI-A2).
//!
//! "For each dataset we randomly select a set of tuples as {tx} by removing
//! values on (multiple) attributes {Ax} as missing values. The remaining
//! tuples are considered as complete tuples in r." Three injectors cover the
//! three workloads used in the experiments:
//!
//! * [`inject_random`] — x% of tuples lose one value on a random attribute
//!   (Tables V, Figures 4–7, 9–13).
//! * [`inject_attr`] — a fixed attribute loses values on random tuples
//!   (Table VI).
//! * [`inject_clustered`] — incomplete tuples form tight clusters so their
//!   nearest neighbors are also incomplete (Figure 8).

use crate::relation::Relation;
use rand::seq::SliceRandom;
use rand::Rng;

/// One removed cell with its ground-truth value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissingCell {
    /// Tuple index in the injected relation.
    pub row: u32,
    /// Attribute index.
    pub col: u32,
    /// The removed (true) value.
    pub truth: f64,
}

/// The set of removed cells — everything an evaluator needs to score an
/// imputation against the truth.
pub type GroundTruth = Vec<MissingCell>;

/// Removes one value on a uniformly random attribute for each of
/// `n_incomplete` distinct, currently-complete tuples.
///
/// Mirrors §VI-B1: "randomly pick 5% tuples as tx with one missing value on
/// a random attribute Ax". Panics if the relation has fewer complete tuples
/// than requested.
pub fn inject_random<R: Rng>(rel: &mut Relation, n_incomplete: usize, rng: &mut R) -> GroundTruth {
    let mut candidates = rel.complete_rows();
    assert!(
        candidates.len() >= n_incomplete,
        "requested {n_incomplete} incomplete tuples but only {} complete rows",
        candidates.len()
    );
    candidates.shuffle(rng);
    let m = rel.arity();
    let mut truth = Vec::with_capacity(n_incomplete);
    for &row in candidates.iter().take(n_incomplete) {
        let col = rng.gen_range(0..m);
        let v = rel
            .clear_cell(row as usize, col)
            .expect("candidate row was complete");
        truth.push(MissingCell {
            row,
            col: col as u32,
            truth: v,
        });
    }
    truth
}

/// Removes attribute `col` from `n_incomplete` random complete tuples
/// (Table VI's per-attribute protocol).
pub fn inject_attr<R: Rng>(
    rel: &mut Relation,
    col: usize,
    n_incomplete: usize,
    rng: &mut R,
) -> GroundTruth {
    let mut candidates = rel.complete_rows();
    assert!(
        candidates.len() >= n_incomplete,
        "requested {n_incomplete} incomplete tuples but only {} complete rows",
        candidates.len()
    );
    candidates.shuffle(rng);
    let mut truth = Vec::with_capacity(n_incomplete);
    for &row in candidates.iter().take(n_incomplete) {
        let v = rel
            .clear_cell(row as usize, col)
            .expect("candidate row was complete");
        truth.push(MissingCell {
            row,
            col: col as u32,
            truth: v,
        });
    }
    truth
}

/// Clustered injection (Figure 8): incomplete tuples arrive in clusters of
/// `cluster_size` mutually nearest tuples, so an incomplete tuple's closest
/// neighbors are themselves incomplete and its complete neighbors are far.
///
/// `n_incomplete / cluster_size` seeds are drawn at random; each seed plus
/// its `cluster_size - 1` nearest still-complete tuples (full-attribute
/// Euclidean distance) lose one value on a random attribute. `cluster_size
/// = 1` degenerates to [`inject_random`]'s workload.
pub fn inject_clustered<R: Rng>(
    rel: &mut Relation,
    n_incomplete: usize,
    cluster_size: usize,
    rng: &mut R,
) -> GroundTruth {
    inject_clustered_inner(rel, n_incomplete, cluster_size, None, rng)
}

/// [`inject_clustered`] with a fixed missing attribute (the Table V/VI
/// single-attribute protocol combined with Figure 8's clustered workload).
pub fn inject_clustered_attr<R: Rng>(
    rel: &mut Relation,
    n_incomplete: usize,
    cluster_size: usize,
    col: usize,
    rng: &mut R,
) -> GroundTruth {
    inject_clustered_inner(rel, n_incomplete, cluster_size, Some(col), rng)
}

fn inject_clustered_inner<R: Rng>(
    rel: &mut Relation,
    n_incomplete: usize,
    cluster_size: usize,
    fixed_col: Option<usize>,
    rng: &mut R,
) -> GroundTruth {
    assert!(cluster_size >= 1, "cluster_size must be positive");
    let m = rel.arity();
    let n_clusters = n_incomplete.div_ceil(cluster_size);
    let mut truth = Vec::with_capacity(n_incomplete);
    let mut remaining = n_incomplete;

    for _ in 0..n_clusters {
        if remaining == 0 {
            break;
        }
        let complete = rel.complete_rows();
        let take = cluster_size.min(remaining);
        assert!(
            complete.len() >= take,
            "not enough complete rows left for a cluster of {take}"
        );
        let seed = *complete.choose(rng).expect("non-empty");
        // Rank the complete rows by distance to the seed; the seed itself
        // sorts first with distance 0.
        let seed_row: Vec<f64> = rel.row_raw(seed as usize).to_vec();
        let mut ranked: Vec<(f64, u32)> = complete
            .iter()
            .map(|&r| {
                let row = rel.row_raw(r as usize);
                let d: f64 = row
                    .iter()
                    .zip(&seed_row)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, r)
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(_, row) in ranked.iter().take(take) {
            let col = fixed_col.unwrap_or_else(|| rng.gen_range(0..m));
            let v = rel
                .clear_cell(row as usize, col)
                .expect("ranked row was complete");
            truth.push(MissingCell {
                row,
                col: col as u32,
                truth: v,
            });
        }
        remaining -= take;
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid(n: usize) -> Relation {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, 2.0 * i as f64, 100.0 - i as f64])
            .collect();
        Relation::from_rows(Schema::anonymous(3), &rows)
    }

    #[test]
    fn random_injection_counts_and_truth() {
        let mut rel = grid(50);
        let clean = rel.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let truth = inject_random(&mut rel, 10, &mut rng);
        assert_eq!(truth.len(), 10);
        assert_eq!(rel.missing_count(), 10);
        assert_eq!(rel.incomplete_rows().len(), 10); // one cell per tuple
        for c in &truth {
            assert!(rel.is_missing(c.row as usize, c.col as usize));
            assert_eq!(clean.get(c.row as usize, c.col as usize), Some(c.truth));
        }
    }

    #[test]
    fn random_injection_is_deterministic_per_seed() {
        let mut a = grid(30);
        let mut b = grid(30);
        let ta = inject_random(&mut a, 5, &mut StdRng::seed_from_u64(42));
        let tb = inject_random(&mut b, 5, &mut StdRng::seed_from_u64(42));
        assert_eq!(ta, tb);
    }

    #[test]
    fn attr_injection_hits_one_column() {
        let mut rel = grid(20);
        let mut rng = StdRng::seed_from_u64(1);
        let truth = inject_attr(&mut rel, 2, 6, &mut rng);
        assert_eq!(truth.len(), 6);
        assert!(truth.iter().all(|c| c.col == 2));
        assert_eq!(rel.missing_count(), 6);
    }

    #[test]
    fn clustered_injection_groups_neighbors() {
        let mut rel = grid(60);
        let mut rng = StdRng::seed_from_u64(3);
        let truth = inject_clustered(&mut rel, 12, 3, &mut rng);
        assert_eq!(truth.len(), 12);
        assert_eq!(rel.incomplete_rows().len(), 12);
        // Rows in `grid` are ordered along a line, so each cluster of 3 must
        // occupy consecutive (or near-consecutive) row indices.
        let mut rows: Vec<u32> = truth.iter().map(|c| c.row).collect();
        rows.sort_unstable();
        let mut tight_pairs = 0;
        for w in rows.windows(2) {
            if w[1] - w[0] <= 2 {
                tight_pairs += 1;
            }
        }
        assert!(tight_pairs >= 6, "expected clustered rows, got {rows:?}");
    }

    #[test]
    fn cluster_size_one_matches_random_shape() {
        let mut rel = grid(40);
        let mut rng = StdRng::seed_from_u64(9);
        let truth = inject_clustered(&mut rel, 8, 1, &mut rng);
        assert_eq!(truth.len(), 8);
        assert_eq!(rel.incomplete_rows().len(), 8);
    }

    #[test]
    #[should_panic(expected = "complete rows")]
    fn rejects_over_injection() {
        let mut rel = grid(5);
        let mut rng = StdRng::seed_from_u64(0);
        inject_random(&mut rel, 6, &mut rng);
    }
}
