//! kNN classification (Weka's `ibk`), weighted F1, and stratified k-fold
//! splitting — the Table VII classification pipeline ("we use 5-fold cross
//! validation, where missing values exist both in training and testing
//! sets").

use iim_data::Relation;
use iim_neighbors::brute::FeatureMatrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// A fitted kNN (majority-vote) classifier.
pub struct KnnClassifier {
    fm: FeatureMatrix,
    labels: Vec<u32>,
    k: usize,
}

impl KnnClassifier {
    /// Fits on the rows of `rel` listed in `train_rows` that are complete
    /// on `features`; incomplete training rows are skipped (the classifier
    /// cannot measure distances to them), which is how missing data hurts
    /// the no-imputation baseline.
    pub fn fit(
        rel: &Relation,
        features: &[usize],
        labels: &[u32],
        train_rows: &[u32],
        k: usize,
    ) -> Self {
        let usable: Vec<u32> = train_rows
            .iter()
            .copied()
            .filter(|&r| rel.row_complete_on(r as usize, features))
            .collect();
        assert!(!usable.is_empty(), "no usable training rows");
        let fm = FeatureMatrix::gather(rel, features, &usable);
        let labels = usable.iter().map(|&r| labels[r as usize]).collect();
        Self {
            fm,
            labels,
            k: k.max(1),
        }
    }

    /// Majority vote among the k nearest training rows (ties break toward
    /// the smaller class id, deterministically).
    pub fn predict(&self, x: &[f64]) -> u32 {
        let nn = self.fm.knn(x, self.k);
        let mut votes: Vec<(u32, usize)> = Vec::with_capacity(self.k);
        for n in &nn {
            let label = self.labels[n.pos as usize];
            match votes.iter_mut().find(|(l, _)| *l == label) {
                Some((_, c)) => *c += 1,
                None => votes.push((label, 1)),
            }
        }
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes[0].0
    }
}

/// Weighted-average F1 over classes (each class's F1 weighted by its true
/// support), the convention behind single-number F1 reports like
/// Table VII's.
pub fn f1_weighted(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if truth.is_empty() {
        return 1.0;
    }
    let classes: Vec<u32> = {
        let mut c: Vec<u32> = truth.to_vec();
        c.sort_unstable();
        c.dedup();
        c
    };
    let mut weighted = 0.0;
    for &class in &classes {
        let tp = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p == class && **t == class)
            .count() as f64;
        let fp = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p == class && **t != class)
            .count() as f64;
        let fnn = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p != class && **t == class)
            .count() as f64;
        let support = (tp + fnn) / truth.len() as f64;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fnn > 0.0 { tp / (tp + fnn) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        weighted += support * f1;
    }
    weighted
}

/// Stratified k-fold split: each fold receives a proportional share of
/// every class. Returns `folds` row-index lists covering `0..labels.len()`.
pub fn stratified_folds<R: Rng>(labels: &[u32], folds: usize, rng: &mut R) -> Vec<Vec<u32>> {
    assert!(folds >= 2, "need at least 2 folds");
    let mut by_class: Vec<(u32, Vec<u32>)> = Vec::new();
    for (i, &l) in labels.iter().enumerate() {
        match by_class.iter_mut().find(|(c, _)| *c == l) {
            Some((_, v)) => v.push(i as u32),
            None => by_class.push((l, vec![i as u32])),
        }
    }
    let mut out = vec![Vec::new(); folds];
    for (_, mut rows) in by_class {
        rows.shuffle(rng);
        for (i, r) in rows.into_iter().enumerate() {
            out[i % folds].push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::{Relation, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_blobs() -> (Relation, Vec<u32>) {
        let mut rel = Relation::with_capacity(Schema::anonymous(2), 0);
        let mut labels = Vec::new();
        for i in 0..40 {
            rel.push_row(&[i as f64 * 0.05, 0.0]);
            labels.push(0);
        }
        for i in 0..40 {
            rel.push_row(&[10.0 + i as f64 * 0.05, 5.0]);
            labels.push(1);
        }
        (rel, labels)
    }

    #[test]
    fn classifies_separable_data() {
        let (rel, labels) = labeled_blobs();
        let all: Vec<u32> = (0..80).collect();
        let clf = KnnClassifier::fit(&rel, &[0, 1], &labels, &all, 3);
        assert_eq!(clf.predict(&[0.5, 0.1]), 0);
        assert_eq!(clf.predict(&[10.5, 4.9]), 1);
    }

    #[test]
    fn skips_incomplete_training_rows() {
        let (mut rel, labels) = labeled_blobs();
        for i in 0..40 {
            rel.clear_cell(i, 1); // wipe class 0's second feature
        }
        let all: Vec<u32> = (0..80).collect();
        let clf = KnnClassifier::fit(&rel, &[0, 1], &labels, &all, 3);
        // Only class-1 rows remain usable → everything classifies as 1.
        assert_eq!(clf.predict(&[0.5, 0.1]), 1);
    }

    #[test]
    fn f1_perfect_and_degenerate() {
        assert_eq!(f1_weighted(&[0, 1, 0], &[0, 1, 0]), 1.0);
        assert_eq!(f1_weighted(&[], &[]), 1.0);
        // All-wrong binary predictions → F1 = 0.
        assert_eq!(f1_weighted(&[1, 0], &[0, 1]), 0.0);
        // Majority-class guessing on an 3:1 imbalance.
        let pred = vec![0, 0, 0, 0];
        let truth = vec![0, 0, 0, 1];
        let f1 = f1_weighted(&pred, &truth);
        // class 0: p=0.75, r=1 → f1 6/7, weight .75; class 1: f1 0.
        assert!((f1 - 0.75 * (6.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let labels: Vec<u32> = (0..50).map(|i| if i < 40 { 0 } else { 1 }).collect();
        let folds = stratified_folds(&labels, 5, &mut StdRng::seed_from_u64(4));
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(|f| f.len()).sum();
        assert_eq!(total, 50);
        for fold in &folds {
            let minority = fold.iter().filter(|&&r| labels[r as usize] == 1).count();
            assert_eq!(minority, 2, "each fold gets 2 of the 10 minority rows");
        }
    }

    #[test]
    fn cross_validated_f1_high_on_separable() {
        let (rel, labels) = labeled_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let folds = stratified_folds(&labels, 5, &mut rng);
        let mut preds = vec![0u32; labels.len()];
        for f in 0..5 {
            let test = &folds[f];
            let train: Vec<u32> = (0..5)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            let clf = KnnClassifier::fit(&rel, &[0, 1], &labels, &train, 3);
            for &t in test {
                let row = rel.row_raw(t as usize);
                preds[t as usize] = clf.predict(row);
            }
        }
        assert!(f1_weighted(&preds, &labels) > 0.99);
    }
}
