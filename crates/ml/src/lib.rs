//! Downstream-application substrate for the paper's Table VII.
//!
//! §VI-D evaluates how imputation quality propagates into applications:
//! k-means clustering scored by *purity* against the clusters of the
//! original complete data, and kNN classification (Weka's `ibk`) scored by
//! F1 under 5-fold cross validation. The paper used Weka; this crate
//! reimplements both algorithms so the whole pipeline stays in Rust.

pub mod classify;
pub mod kmeans;

pub use classify::{f1_weighted, stratified_folds, KnnClassifier};
pub use kmeans::{kmeans, kmeans_with_init, purity, KMeansResult};
