//! Lloyd's k-means with k-means++ seeding, plus the purity measure used in
//! Table VII ("counts for each cluster the number of data points from the
//! most common class").

use iim_data::Relation;
use rand::Rng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per row.
    pub labels: Vec<u32>,
    /// Final centroids, `k x m` row-major.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Runs k-means over the *complete* rows' full attribute vectors.
///
/// Rows with missing cells are assigned label `u32::MAX` (excluded from the
/// objective) — the "discard incomplete tuples" column of Table VII scores
/// exactly those runs.
pub fn kmeans<R: Rng>(rel: &Relation, k: usize, max_iter: usize, rng: &mut R) -> KMeansResult {
    let rows: Vec<u32> = rel.complete_rows();
    assert!(!rows.is_empty(), "k-means needs at least one complete row");
    let k = k.clamp(1, rows.len());
    let centroids = plus_plus_seeds(rel, &rows, k, rng);
    lloyd(rel, &rows, centroids, max_iter)
}

/// Runs Lloyd iterations from *given* initial centroids.
///
/// Table VII compares clusterings of slightly different relations (one per
/// imputation method); seeding each run independently would let k-means++
/// initialization noise dwarf the imputation differences, so all variants
/// start from the reference centroids of the original complete data.
pub fn kmeans_with_init(rel: &Relation, centroids: Vec<Vec<f64>>, max_iter: usize) -> KMeansResult {
    let rows: Vec<u32> = rel.complete_rows();
    assert!(!rows.is_empty(), "k-means needs at least one complete row");
    lloyd(rel, &rows, centroids, max_iter)
}

fn plus_plus_seeds<R: Rng>(rel: &Relation, rows: &[u32], k: usize, rng: &mut R) -> Vec<Vec<f64>> {
    // k-means++ seeding over the complete rows.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rows[rng.gen_range(0..rows.len())];
    centroids.push(rel.row_raw(first as usize).to_vec());
    let mut d2 = vec![0.0f64; rows.len()];
    while centroids.len() < k {
        let mut total = 0.0;
        for (slot, &r) in d2.iter_mut().zip(rows) {
            let row = rel.row_raw(r as usize);
            let best = centroids
                .iter()
                .map(|c| sq(row, c))
                .fold(f64::INFINITY, f64::min);
            *slot = best;
            total += best;
        }
        let pick = if total <= 0.0 {
            rows[rng.gen_range(0..rows.len())]
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = rows[rows.len() - 1];
            for (i, &r) in rows.iter().enumerate() {
                target -= d2[i];
                if target <= 0.0 {
                    chosen = r;
                    break;
                }
            }
            chosen
        };
        centroids.push(rel.row_raw(pick as usize).to_vec());
    }
    centroids
}

fn lloyd(
    rel: &Relation,
    rows: &[u32],
    mut centroids: Vec<Vec<f64>>,
    max_iter: usize,
) -> KMeansResult {
    let k = centroids.len();
    let m = rel.arity();
    let mut assign = vec![0u32; rows.len()];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        let mut moved = false;
        for (slot, &r) in assign.iter_mut().zip(rows) {
            let row = rel.row_raw(r as usize);
            let mut best = (f64::INFINITY, 0u32);
            for (ci, c) in centroids.iter().enumerate() {
                let d = sq(row, c);
                if d < best.0 {
                    best = (d, ci as u32);
                }
            }
            if *slot != best.1 {
                moved = true;
                *slot = best.1;
            }
        }
        if it > 0 && !moved {
            break;
        }
        // Recompute centroids; empty clusters keep their position.
        let mut sums = vec![vec![0.0; m]; k];
        let mut counts = vec![0usize; k];
        for (&a, &r) in assign.iter().zip(rows) {
            counts[a as usize] += 1;
            let row = rel.row_raw(r as usize);
            for (s, v) in sums[a as usize].iter_mut().zip(row) {
                *s += v;
            }
        }
        for ((c, sum), &cnt) in centroids.iter_mut().zip(&sums).zip(&counts) {
            if cnt > 0 {
                for (slot, s) in c.iter_mut().zip(sum) {
                    *slot = s / cnt as f64;
                }
            }
        }
    }

    let mut labels = vec![u32::MAX; rel.n_rows()];
    let mut inertia = 0.0;
    for (&a, &r) in assign.iter().zip(rows) {
        labels[r as usize] = a;
        inertia += sq(rel.row_raw(r as usize), &centroids[a as usize]);
    }
    KMeansResult {
        labels,
        centroids,
        inertia,
        iterations,
    }
}

fn sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clustering purity of `labels` against `truth` (Table VII's measure):
/// for each predicted cluster, count the points of its most common truth
/// class; purity = matched / total. Rows labeled `u32::MAX` in *either*
/// vector (discarded/incomplete) count toward the denominator but can
/// never match — discarding tuples therefore lowers purity, as in the
/// paper's first column.
pub fn purity(labels: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(labels.len(), truth.len());
    if labels.is_empty() {
        return 1.0;
    }
    let k_pred = labels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .map_or(0, |&m| m + 1);
    let k_true = truth
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .map_or(0, |&m| m + 1);
    let mut counts = vec![0usize; (k_pred * k_true) as usize];
    for (&p, &t) in labels.iter().zip(truth) {
        if p != u32::MAX && t != u32::MAX {
            counts[(p * k_true + t) as usize] += 1;
        }
    }
    let mut matched = 0usize;
    for p in 0..k_pred {
        let row = &counts[(p * k_true) as usize..((p + 1) * k_true) as usize];
        matched += row.iter().copied().max().unwrap_or(0);
    }
    matched as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::{Relation, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blob_rel() -> (Relation, Vec<u32>) {
        let mut rel = Relation::with_capacity(Schema::anonymous(2), 0);
        let mut truth = Vec::new();
        for (ci, center) in [(0.0, 0.0), (10.0, 0.0), (5.0, 12.0)].iter().enumerate() {
            for i in 0..30 {
                let dx = (i % 5) as f64 * 0.1;
                let dy = (i / 5) as f64 * 0.1;
                rel.push_row(&[center.0 + dx, center.1 + dy]);
                truth.push(ci as u32);
            }
        }
        (rel, truth)
    }

    #[test]
    fn separable_blobs_get_pure_clusters() {
        let (rel, truth) = three_blob_rel();
        let mut rng = StdRng::seed_from_u64(5);
        let res = kmeans(&rel, 3, 100, &mut rng);
        assert!(purity(&res.labels, &truth) > 0.99);
        assert!(res.inertia < 50.0);
    }

    #[test]
    fn incomplete_rows_are_discarded() {
        let (mut rel, truth) = three_blob_rel();
        rel.clear_cell(0, 1);
        rel.clear_cell(40, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let res = kmeans(&rel, 3, 100, &mut rng);
        assert_eq!(res.labels[0], u32::MAX);
        assert_eq!(res.labels[40], u32::MAX);
        // Purity drops because discarded rows cannot match.
        let p = purity(&res.labels, &truth);
        assert!(p < 1.0 && p > 0.9);
    }

    #[test]
    fn purity_degenerate_cases() {
        assert_eq!(purity(&[], &[]), 1.0);
        // All one cluster over two classes of equal size → 0.5.
        let labels = vec![0, 0, 0, 0];
        let truth = vec![0, 0, 1, 1];
        assert!((purity(&labels, &truth) - 0.5).abs() < 1e-12);
        // Perfect split with permuted ids is still pure.
        let labels = vec![1, 1, 0, 0];
        assert!((purity(&labels, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_clamped_and_deterministic_per_seed() {
        let (rel, _) = three_blob_rel();
        let a = kmeans(&rel, 500, 10, &mut StdRng::seed_from_u64(1));
        let b = kmeans(&rel, 500, 10, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.labels, b.labels);
        assert!(a.centroids.len() <= 90);
    }
}
