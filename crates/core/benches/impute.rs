//! Criterion micro-benchmarks for the online imputation hot path:
//! `impute_one` through the stored index (brute vs KD-tree) and the
//! allocation-free candidate combination.
//!
//! The brute/kdtree pair is asserted bitwise-identical on the benched
//! queries before timing — the index can only change latency, never a
//! value.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iim_core::{
    combine_candidates, combine_candidates_with, IimConfig, IimModel, IndexChoice, Learning,
    Weighting,
};
use iim_neighbors::brute::{FeatureMatrix, Neighbor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn training_parts(n: usize, m: usize, seed: u64) -> (FeatureMatrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * m).map(|_| rng.gen_range(0.0..100.0)).collect();
    let fm = FeatureMatrix::from_dense(m, (0..n as u32).collect::<Vec<u32>>(), data);
    let ys: Vec<f64> = (0..n)
        .map(|i| fm.point(i).iter().sum::<f64>() + rng.gen_range(-0.5..0.5))
        .collect();
    (fm, ys)
}

fn bench_impute_one(c: &mut Criterion) {
    let (n, m) = (20_000usize, 4usize);
    let (fm, ys) = training_parts(n, m, 1);
    let cfg = |index| IimConfig {
        k: 10,
        learning: Learning::Fixed { ell: 8 },
        index,
        ..IimConfig::default()
    };
    let brute = IimModel::learn_from_parts(fm.clone(), &ys, &cfg(IndexChoice::Brute));
    let kd = IimModel::learn_from_parts(fm, &ys, &cfg(IndexChoice::KdTree));
    let mut rng = StdRng::seed_from_u64(2);
    let queries: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..m).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    for q in &queries {
        assert_eq!(
            brute.impute(q).to_bits(),
            kd.impute(q).to_bits(),
            "index variants must serve identical values"
        );
    }

    let mut group = c.benchmark_group("impute_one_n20k_m4_k10");
    for (name, model) in [("brute", &brute), ("kdtree", &kd)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), model, |b, model| {
            let mut scratch = iim_core::ImputeScratch::new();
            b.iter(|| {
                for q in &queries {
                    black_box(model.impute_with(q, &mut scratch));
                }
            });
        });
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut make = |k: usize| -> Vec<(Neighbor, f64)> {
        (0..k as u32)
            .map(|i| {
                (
                    Neighbor {
                        pos: i,
                        dist: rng.gen_range(0.1..2.0),
                    },
                    rng.gen_range(0.0..10.0),
                )
            })
            .collect()
    };
    let k10 = make(10);
    let k40 = make(40);
    c.bench_function("combine_mutual_vote_k10_stack", |b| {
        b.iter(|| black_box(combine_candidates(&k10, Weighting::MutualVote)));
    });
    c.bench_function("combine_mutual_vote_k40_scratch", |b| {
        let mut cx = Vec::new();
        b.iter(|| {
            black_box(combine_candidates_with(
                &k40,
                Weighting::MutualVote,
                &mut cx,
            ))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_impute_one, bench_combine
}
criterion_main!(benches);
