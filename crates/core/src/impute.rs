//! The imputation phase (Algorithm 2): candidates from the individual
//! models of the k imputation neighbors, combined by mutual voting.
//!
//! Two shapes of the same computation live here:
//!
//! * one-shot wrappers ([`impute_candidates`], [`combine_candidates`]) —
//!   the readable API, kept for compatibility;
//! * the zero-allocation serving path ([`ImputeScratch`],
//!   [`impute_candidates_into`], [`impute_with_scratch`]) — the per-query
//!   hot loop behind [`IimModel::impute`](crate::IimModel::impute), which
//!   searches through the fitted [`NeighborIndex`] and reuses every
//!   buffer. Both produce bit-identical imputations.

use crate::config::Weighting;
use iim_linalg::RidgeModel;
use iim_neighbors::brute::{FeatureMatrix, Neighbor};
use iim_neighbors::{KnnScratch, NeighborIndex};

/// Candidate counts up to this size aggregate through a stack buffer —
/// no heap allocation on the k ≤ 16 serving path (the paper's default is
/// k = 10).
const STACK_K: usize = 16;

/// Reusable per-query buffers for the serving hot path: the kNN selection
/// heap, the neighbor list, the candidate values, and the mutual-vote
/// weight accumulator.
///
/// Scratch contents never influence results: a query served with a fresh
/// scratch and one served with a reused scratch return the same bits.
/// Keep one per worker thread (`IimModel::impute` does this internally via
/// thread-local storage; batch drivers inherit it per worker).
#[derive(Default)]
pub struct ImputeScratch {
    knn: KnnScratch,
    neighbors: Vec<Neighbor>,
    cands: Vec<(Neighbor, f64)>,
    cx: Vec<f64>,
}

impl ImputeScratch {
    /// An empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The candidates produced by the last [`impute_candidates_into`]
    /// call: neighbors ascending by `(distance, position)` paired with
    /// their model predictions.
    pub fn candidates(&self) -> &[(Neighbor, f64)] {
        &self.cands
    }
}

/// (S1) + (S2): finds `Tx = NN(tx, F, k)` among the training tuples and
/// evaluates each neighbor's individual model at `tx[F]` (Formula 9).
///
/// Returns the neighbors (ascending by distance) paired with their
/// candidate values `t_x^j[Am]`. One-shot wrapper over the brute matrix;
/// the serving path is [`impute_candidates_into`].
pub fn impute_candidates(
    fm: &FeatureMatrix,
    models: &[RidgeModel],
    query: &[f64],
    k: usize,
) -> Vec<(Neighbor, f64)> {
    debug_assert_eq!(fm.len(), models.len());
    let neighbors = fm.knn(query, k);
    neighbors
        .into_iter()
        .map(|nb| {
            let candidate = models[nb.pos as usize].predict(query);
            (nb, candidate)
        })
        .collect()
}

/// [`impute_candidates`] through a fitted [`NeighborIndex`] into reusable
/// scratch: no allocation at steady state, bit-identical candidates to
/// the one-shot brute wrapper. Read the result via
/// [`ImputeScratch::candidates`].
pub fn impute_candidates_into(
    index: &NeighborIndex,
    models: &[RidgeModel],
    query: &[f64],
    k: usize,
    scratch: &mut ImputeScratch,
) {
    debug_assert_eq!(index.len(), models.len());
    index.knn_with(query, k, &mut scratch.knn, &mut scratch.neighbors);
    scratch.cands.clear();
    scratch.cands.extend(scratch.neighbors.iter().map(|&nb| {
        let candidate = models[nb.pos as usize].predict(query);
        (nb, candidate)
    }));
}

/// The whole online phase (S1–S3) for one query through the fitted index
/// and caller-owned scratch — the shape `IimModel::impute` serves with.
///
/// Returns `None` only for an empty candidate set (no training tuples).
pub fn impute_with_scratch(
    index: &NeighborIndex,
    models: &[RidgeModel],
    query: &[f64],
    k: usize,
    weighting: Weighting,
    scratch: &mut ImputeScratch,
) -> Option<f64> {
    impute_candidates_into(index, models, query, k, scratch);
    let ImputeScratch { cands, cx, .. } = scratch;
    combine_candidates_with(cands, weighting, cx)
}

/// (S3): aggregates the candidates into the final imputation
/// `t'_x[Am] = Σ t_x^j[Am] · w_xj` (Formula 10).
///
/// Under [`Weighting::MutualVote`], each candidate's weight is the
/// normalized inverse of its total distance to the other candidates
/// (Formulas 11–12): candidates agreeing with each other dominate, outliers
/// are suppressed (Figure 3). When all candidates coincide the formula's
/// `0/0` limit is the common value, which is what is returned.
///
/// Returns `None` for an empty candidate set.
///
/// Allocation-free for `k ≤ 16` candidates (mutual-vote accumulators live
/// on the stack); above that a transient buffer is used — serve through
/// [`combine_candidates_with`] to reuse it.
pub fn combine_candidates(candidates: &[(Neighbor, f64)], weighting: Weighting) -> Option<f64> {
    // The transient buffer is only touched on the > STACK_K branch.
    combine_candidates_with(candidates, weighting, &mut Vec::new())
}

/// [`combine_candidates`] with a caller-owned weight buffer for candidate
/// sets larger than the stack cutoff — the scratch-reuse serving shape.
pub fn combine_candidates_with(
    candidates: &[(Neighbor, f64)],
    weighting: Weighting,
    cx: &mut Vec<f64>,
) -> Option<f64> {
    if candidates.len() <= STACK_K {
        let mut stack = [0.0f64; STACK_K];
        combine_in(candidates, weighting, &mut stack[..candidates.len()])
    } else {
        cx.resize(candidates.len(), 0.0);
        combine_in(candidates, weighting, &mut cx[..candidates.len()])
    }
}

/// Shared S3 body; `cx` must have exactly `candidates.len()` slots.
fn combine_in(candidates: &[(Neighbor, f64)], weighting: Weighting, cx: &mut [f64]) -> Option<f64> {
    if candidates.is_empty() {
        return None;
    }
    if candidates.len() == 1 {
        return Some(candidates[0].1);
    }
    match weighting {
        Weighting::Uniform => {
            let sum: f64 = candidates.iter().map(|(_, c)| c).sum();
            Some(sum / candidates.len() as f64)
        }
        Weighting::MutualVote => Some(mutual_vote(candidates, cx)),
        Weighting::InverseDistance => Some(inverse_distance(candidates)),
    }
}

fn mutual_vote(candidates: &[(Neighbor, f64)], cx: &mut [f64]) -> f64 {
    let k = candidates.len();
    debug_assert_eq!(cx.len(), k);
    // c_xi = Σ_j |c_i − c_j|  (Formula 11)
    for (slot, (_, ci)) in cx.iter_mut().zip(candidates) {
        let mut sum = 0.0;
        for (_, cj) in candidates {
            sum += (ci - cj).abs();
        }
        *slot = sum;
    }
    // Degenerate case: c_xi = 0 means candidate i coincides with *every*
    // other candidate, i.e. all candidates are equal — return that value
    // (the limit of Formula 12 as the spread vanishes). Scale-aware guard.
    let scale: f64 = candidates
        .iter()
        .map(|(_, c)| c.abs())
        .fold(0.0, f64::max)
        .max(1.0);
    let eps = 1e-12 * scale;
    if let Some(i) = (0..k).find(|&i| cx[i] <= eps) {
        return candidates[i].1;
    }
    // w_xi = c_xi⁻¹ / Σ_j c_xj⁻¹  (Formula 12)
    let inv_sum: f64 = cx.iter().map(|c| 1.0 / c).sum();
    candidates
        .iter()
        .zip(cx.iter())
        .map(|((_, ci), cxi)| ci * (1.0 / cxi) / inv_sum)
        .sum()
}

fn inverse_distance(candidates: &[(Neighbor, f64)]) -> f64 {
    // Weighted-kNN-style aggregation on the F-space distances; a neighbor
    // at distance zero takes the whole vote (first such wins ties, matching
    // the ascending order of the candidate list).
    let eps = 1e-12;
    if let Some((_, c)) = candidates.iter().find(|(nb, _)| nb.dist <= eps) {
        return *c;
    }
    let inv_sum: f64 = candidates.iter().map(|(nb, _)| 1.0 / nb.dist).sum();
    candidates
        .iter()
        .map(|(nb, c)| c * (1.0 / nb.dist) / inv_sum)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_fixed;
    use iim_data::paper_fig1;
    use iim_neighbors::NeighborOrders;

    fn nb(pos: u32, dist: f64) -> Neighbor {
        Neighbor { pos, dist }
    }

    #[test]
    fn paper_example_3_end_to_end() {
        // k = 3, ℓ = 4: the paper reports candidates 1.19 (t5), 1.21 (t4),
        // 1.19 (t6) and final imputation 1.194, using its rounded
        // φ5 = (-4.36, 1.11). Exact least squares gives
        // φ5 = φ6 = (-4.4623, 1.1190) → candidates 1.133 (t5, t6) and
        // 1.228 (t4, from the exact φ4 = (5.5638, -0.8672)), with the same
        // mutual-vote weights (0.4, 0.2, 0.4) → 1.152. We pin the exact
        // values tightly, the paper's loosely.
        let (rel, _) = paper_fig1();
        let rows: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &rows);
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let orders = NeighborOrders::build(&fm, 8);
        let models = learn_fixed(&fm, &ys, &orders, 4, 1e-9, 1);

        let cands = impute_candidates(&fm, &models, &[5.0], 3);
        assert_eq!(cands.len(), 3);
        // Neighbors are t5 (index 4, dist 1.8), t4 (index 3, dist 2.1),
        // t6 (index 5, dist 2.5).
        let by_pos: std::collections::HashMap<u32, f64> =
            cands.iter().map(|(nb, c)| (nb.pos, *c)).collect();
        assert!(
            (by_pos[&4] - 1.133).abs() < 0.005,
            "t5 candidate {}",
            by_pos[&4]
        );
        assert!(
            (by_pos[&3] - 1.228).abs() < 0.005,
            "t4 candidate {}",
            by_pos[&3]
        );
        assert!(
            (by_pos[&5] - 1.133).abs() < 0.005,
            "t6 candidate {}",
            by_pos[&5]
        );
        for (_, c) in &cands {
            assert!((c - 1.19).abs() < 0.1, "paper ballpark: {c}");
        }

        let imputed = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        assert!((imputed - 1.152).abs() < 0.005, "imputed {imputed}");
        assert!((imputed - 1.194).abs() < 0.05, "paper ballpark: {imputed}");
        // Much closer to the truth 1.8 than kNN's value mean (3.43).
        assert!((imputed - 1.8).abs() < (3.43 - 1.8f64).abs());
    }

    #[test]
    fn mutual_vote_weights_match_example_3() {
        // Candidates 1.19, 1.21, 1.19 → c = (0.02, 0.04, 0.02), weights
        // (0.4, 0.2, 0.4).
        let cands = vec![(nb(0, 1.8), 1.19), (nb(1, 2.1), 1.21), (nb(2, 2.5), 1.19)];
        let v = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        let expect = 1.19 * 0.4 + 1.21 * 0.2 + 1.19 * 0.4;
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn mutual_vote_suppresses_outlier() {
        // Two agreeing candidates and one far outlier (Figure 3): with
        // k = 3 the agreeing pair each get weight → 0.4 and the outlier
        // → 0.2 (c_out ≈ 2·c_agree), i.e. strictly below uniform.
        let cands = vec![(nb(0, 1.0), 2.0), (nb(1, 1.0), 2.1), (nb(2, 1.0), 50.0)];
        let v = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        let uniform = combine_candidates(&cands, Weighting::Uniform).unwrap();
        assert!((uniform - (2.0 + 2.1 + 50.0) / 3.0).abs() < 1e-12);
        assert!(v < uniform, "mutual vote {v} must beat uniform {uniform}");
        // Effective outlier weight (solve v = (1-w)·mean(2.0,2.1) + w·50).
        let w = (v - 2.05) / (50.0 - 2.05);
        assert!((w - 0.2).abs() < 0.01, "outlier weight {w}");
    }

    #[test]
    fn identical_candidates_return_common_value() {
        let cands = vec![(nb(0, 1.0), 7.5), (nb(1, 2.0), 7.5), (nb(2, 3.0), 7.5)];
        for w in [
            Weighting::MutualVote,
            Weighting::Uniform,
            Weighting::InverseDistance,
        ] {
            assert_eq!(combine_candidates(&cands, w), Some(7.5));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(combine_candidates(&[], Weighting::MutualVote), None);
        let single = vec![(nb(0, 0.5), 3.25)];
        assert_eq!(
            combine_candidates(&single, Weighting::MutualVote),
            Some(3.25)
        );
    }

    #[test]
    fn inverse_distance_weighting() {
        let cands = vec![(nb(0, 1.0), 0.0), (nb(1, 3.0), 4.0)];
        // Weights 1/1 and 1/3 → (0*1 + 4*(1/3)) / (4/3) = 1.
        let v = combine_candidates(&cands, Weighting::InverseDistance).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        // Zero-distance neighbor dominates entirely.
        let exact = vec![(nb(0, 0.0), 9.0), (nb(1, 5.0), 1.0)];
        assert_eq!(
            combine_candidates(&exact, Weighting::InverseDistance),
            Some(9.0)
        );
    }

    #[test]
    fn scratch_path_matches_one_shot_wrappers() {
        let (rel, _) = paper_fig1();
        let rows: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &rows);
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let orders = NeighborOrders::build(&fm, 8);
        let models = learn_fixed(&fm, &ys, &orders, 4, 1e-9, 1);
        let mut scratch = ImputeScratch::new();
        for choice in [
            iim_neighbors::IndexChoice::Brute,
            iim_neighbors::IndexChoice::KdTree,
            iim_neighbors::IndexChoice::VpTree,
        ] {
            let index = NeighborIndex::build(fm.clone(), choice);
            for q in [0.0, 2.5, 5.0, 9.1] {
                let one_shot = impute_candidates(&fm, &models, &[q], 3);
                impute_candidates_into(&index, &models, &[q], 3, &mut scratch);
                assert_eq!(scratch.candidates(), &one_shot[..]);
                for w in [
                    Weighting::MutualVote,
                    Weighting::Uniform,
                    Weighting::InverseDistance,
                ] {
                    let a = combine_candidates(&one_shot, w);
                    let b = impute_with_scratch(&index, &models, &[q], 3, w, &mut scratch);
                    assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
                }
            }
        }
    }

    #[test]
    fn combine_above_stack_cutoff_matches_reference() {
        // 40 candidates exercises the heap-buffer branch; a scratch-reuse
        // pass must agree bitwise with the one-shot wrapper.
        let cands: Vec<(Neighbor, f64)> = (0..40)
            .map(|i| (nb(i, 1.0 + i as f64 * 0.1), (i % 7) as f64 * 1.3 - 2.0))
            .collect();
        let mut cx = Vec::new();
        for w in [
            Weighting::MutualVote,
            Weighting::Uniform,
            Weighting::InverseDistance,
        ] {
            let a = combine_candidates(&cands, w).unwrap();
            let b = combine_candidates_with(&cands, w, &mut cx).unwrap();
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn weights_sum_to_one_invariant() {
        // Reconstruct weights from the aggregation by probing with shifted
        // candidate sets: combine(c + t) == combine(c) + t for any constant
        // t iff weights sum to 1.
        let cands = vec![(nb(0, 1.0), 1.0), (nb(1, 2.0), 2.0), (nb(2, 3.0), 4.0)];
        let base = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        let shifted: Vec<(Neighbor, f64)> = cands.iter().map(|(n, c)| (*n, c + 10.0)).collect();
        let moved = combine_candidates(&shifted, Weighting::MutualVote).unwrap();
        assert!((moved - base - 10.0).abs() < 1e-9);
    }
}
