//! The imputation phase (Algorithm 2): candidates from the individual
//! models of the k imputation neighbors, combined by mutual voting.

use crate::config::Weighting;
use iim_linalg::RidgeModel;
use iim_neighbors::brute::{FeatureMatrix, Neighbor};

/// (S1) + (S2): finds `Tx = NN(tx, F, k)` among the training tuples and
/// evaluates each neighbor's individual model at `tx[F]` (Formula 9).
///
/// Returns the neighbors (ascending by distance) paired with their
/// candidate values `t_x^j[Am]`.
pub fn impute_candidates(
    fm: &FeatureMatrix,
    models: &[RidgeModel],
    query: &[f64],
    k: usize,
) -> Vec<(Neighbor, f64)> {
    debug_assert_eq!(fm.len(), models.len());
    let neighbors = fm.knn(query, k);
    neighbors
        .into_iter()
        .map(|nb| {
            let candidate = models[nb.pos as usize].predict(query);
            (nb, candidate)
        })
        .collect()
}

/// (S3): aggregates the candidates into the final imputation
/// `t'_x[Am] = Σ t_x^j[Am] · w_xj` (Formula 10).
///
/// Under [`Weighting::MutualVote`], each candidate's weight is the
/// normalized inverse of its total distance to the other candidates
/// (Formulas 11–12): candidates agreeing with each other dominate, outliers
/// are suppressed (Figure 3). When all candidates coincide the formula's
/// `0/0` limit is the common value, which is what is returned.
///
/// Returns `None` for an empty candidate set.
pub fn combine_candidates(candidates: &[(Neighbor, f64)], weighting: Weighting) -> Option<f64> {
    if candidates.is_empty() {
        return None;
    }
    if candidates.len() == 1 {
        return Some(candidates[0].1);
    }
    match weighting {
        Weighting::Uniform => {
            let sum: f64 = candidates.iter().map(|(_, c)| c).sum();
            Some(sum / candidates.len() as f64)
        }
        Weighting::MutualVote => Some(mutual_vote(candidates)),
        Weighting::InverseDistance => Some(inverse_distance(candidates)),
    }
}

fn mutual_vote(candidates: &[(Neighbor, f64)]) -> f64 {
    let k = candidates.len();
    // c_xi = Σ_j |c_i − c_j|  (Formula 11)
    let mut cx = vec![0.0; k];
    for i in 0..k {
        let ci = candidates[i].1;
        let mut sum = 0.0;
        for (_, cj) in candidates {
            sum += (ci - cj).abs();
        }
        cx[i] = sum;
    }
    // Degenerate case: c_xi = 0 means candidate i coincides with *every*
    // other candidate, i.e. all candidates are equal — return that value
    // (the limit of Formula 12 as the spread vanishes). Scale-aware guard.
    let scale: f64 = candidates
        .iter()
        .map(|(_, c)| c.abs())
        .fold(0.0, f64::max)
        .max(1.0);
    let eps = 1e-12 * scale;
    if let Some(i) = (0..k).find(|&i| cx[i] <= eps) {
        return candidates[i].1;
    }
    // w_xi = c_xi⁻¹ / Σ_j c_xj⁻¹  (Formula 12)
    let inv_sum: f64 = cx.iter().map(|c| 1.0 / c).sum();
    candidates
        .iter()
        .zip(&cx)
        .map(|((_, ci), cxi)| ci * (1.0 / cxi) / inv_sum)
        .sum()
}

fn inverse_distance(candidates: &[(Neighbor, f64)]) -> f64 {
    // Weighted-kNN-style aggregation on the F-space distances; a neighbor
    // at distance zero takes the whole vote (first such wins ties, matching
    // the ascending order of the candidate list).
    let eps = 1e-12;
    if let Some((_, c)) = candidates.iter().find(|(nb, _)| nb.dist <= eps) {
        return *c;
    }
    let inv_sum: f64 = candidates.iter().map(|(nb, _)| 1.0 / nb.dist).sum();
    candidates
        .iter()
        .map(|(nb, c)| c * (1.0 / nb.dist) / inv_sum)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_fixed;
    use iim_data::paper_fig1;
    use iim_neighbors::NeighborOrders;

    fn nb(pos: u32, dist: f64) -> Neighbor {
        Neighbor { pos, dist }
    }

    #[test]
    fn paper_example_3_end_to_end() {
        // k = 3, ℓ = 4: the paper reports candidates 1.19 (t5), 1.21 (t4),
        // 1.19 (t6) and final imputation 1.194, using its rounded
        // φ5 = (-4.36, 1.11). Exact least squares gives
        // φ5 = φ6 = (-4.4623, 1.1190) → candidates 1.133 (t5, t6) and
        // 1.228 (t4, from the exact φ4 = (5.5638, -0.8672)), with the same
        // mutual-vote weights (0.4, 0.2, 0.4) → 1.152. We pin the exact
        // values tightly, the paper's loosely.
        let (rel, _) = paper_fig1();
        let rows: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &rows);
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let orders = NeighborOrders::build(&fm, 8);
        let models = learn_fixed(&fm, &ys, &orders, 4, 1e-9, 1);

        let cands = impute_candidates(&fm, &models, &[5.0], 3);
        assert_eq!(cands.len(), 3);
        // Neighbors are t5 (index 4, dist 1.8), t4 (index 3, dist 2.1),
        // t6 (index 5, dist 2.5).
        let by_pos: std::collections::HashMap<u32, f64> =
            cands.iter().map(|(nb, c)| (nb.pos, *c)).collect();
        assert!(
            (by_pos[&4] - 1.133).abs() < 0.005,
            "t5 candidate {}",
            by_pos[&4]
        );
        assert!(
            (by_pos[&3] - 1.228).abs() < 0.005,
            "t4 candidate {}",
            by_pos[&3]
        );
        assert!(
            (by_pos[&5] - 1.133).abs() < 0.005,
            "t6 candidate {}",
            by_pos[&5]
        );
        for (_, c) in &cands {
            assert!((c - 1.19).abs() < 0.1, "paper ballpark: {c}");
        }

        let imputed = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        assert!((imputed - 1.152).abs() < 0.005, "imputed {imputed}");
        assert!((imputed - 1.194).abs() < 0.05, "paper ballpark: {imputed}");
        // Much closer to the truth 1.8 than kNN's value mean (3.43).
        assert!((imputed - 1.8).abs() < (3.43 - 1.8f64).abs());
    }

    #[test]
    fn mutual_vote_weights_match_example_3() {
        // Candidates 1.19, 1.21, 1.19 → c = (0.02, 0.04, 0.02), weights
        // (0.4, 0.2, 0.4).
        let cands = vec![(nb(0, 1.8), 1.19), (nb(1, 2.1), 1.21), (nb(2, 2.5), 1.19)];
        let v = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        let expect = 1.19 * 0.4 + 1.21 * 0.2 + 1.19 * 0.4;
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn mutual_vote_suppresses_outlier() {
        // Two agreeing candidates and one far outlier (Figure 3): with
        // k = 3 the agreeing pair each get weight → 0.4 and the outlier
        // → 0.2 (c_out ≈ 2·c_agree), i.e. strictly below uniform.
        let cands = vec![(nb(0, 1.0), 2.0), (nb(1, 1.0), 2.1), (nb(2, 1.0), 50.0)];
        let v = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        let uniform = combine_candidates(&cands, Weighting::Uniform).unwrap();
        assert!((uniform - (2.0 + 2.1 + 50.0) / 3.0).abs() < 1e-12);
        assert!(v < uniform, "mutual vote {v} must beat uniform {uniform}");
        // Effective outlier weight (solve v = (1-w)·mean(2.0,2.1) + w·50).
        let w = (v - 2.05) / (50.0 - 2.05);
        assert!((w - 0.2).abs() < 0.01, "outlier weight {w}");
    }

    #[test]
    fn identical_candidates_return_common_value() {
        let cands = vec![(nb(0, 1.0), 7.5), (nb(1, 2.0), 7.5), (nb(2, 3.0), 7.5)];
        for w in [
            Weighting::MutualVote,
            Weighting::Uniform,
            Weighting::InverseDistance,
        ] {
            assert_eq!(combine_candidates(&cands, w), Some(7.5));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(combine_candidates(&[], Weighting::MutualVote), None);
        let single = vec![(nb(0, 0.5), 3.25)];
        assert_eq!(
            combine_candidates(&single, Weighting::MutualVote),
            Some(3.25)
        );
    }

    #[test]
    fn inverse_distance_weighting() {
        let cands = vec![(nb(0, 1.0), 0.0), (nb(1, 3.0), 4.0)];
        // Weights 1/1 and 1/3 → (0*1 + 4*(1/3)) / (4/3) = 1.
        let v = combine_candidates(&cands, Weighting::InverseDistance).unwrap();
        assert!((v - 1.0).abs() < 1e-12);
        // Zero-distance neighbor dominates entirely.
        let exact = vec![(nb(0, 0.0), 9.0), (nb(1, 5.0), 1.0)];
        assert_eq!(
            combine_candidates(&exact, Weighting::InverseDistance),
            Some(9.0)
        );
    }

    #[test]
    fn weights_sum_to_one_invariant() {
        // Reconstruct weights from the aggregation by probing with shifted
        // candidate sets: combine(c + t) == combine(c) + t for any constant
        // t iff weights sum to 1.
        let cands = vec![(nb(0, 1.0), 1.0), (nb(1, 2.0), 2.0), (nb(2, 3.0), 4.0)];
        let base = combine_candidates(&cands, Weighting::MutualVote).unwrap();
        let shifted: Vec<(Neighbor, f64)> = cands.iter().map(|(n, c)| (*n, c + 10.0)).collect();
        let moved = combine_candidates(&shifted, Weighting::MutualVote).unwrap();
        assert!((moved - base - 10.0).abs() < 1e-9);
    }
}
