//! The learning phase (Algorithm 1): one ridge model per complete tuple
//! over its ℓ nearest learning neighbors.

use iim_exec::Pool;
use iim_linalg::{ridge_fit, RidgeModel};
use iim_neighbors::{brute::FeatureMatrix, NeighborOrders};

/// Learns Φ = {φ₁, …, φₙ}: for every candidate tuple `i`, a ridge model
/// over `NN(tᵢ, F, ℓ)` (Algorithm 1).
///
/// * `fm` — training tuples gathered on `F` (positions are model indices);
/// * `ys` — the target attribute values, `ys[pos]` for tuple `pos`;
/// * `orders` — precomputed neighbor orders of depth ≥ `ell`;
/// * `ell` — number of learning neighbors, clamped to `[1, n]`;
/// * `alpha` — ridge regularization (Formula 5);
/// * `threads` — worker count (tuples are independent; `0` uses the
///   process default, see [`iim_exec::default_threads`]). The output is
///   bitwise-identical for every worker count.
///
/// `ell = 1` yields the paper's constant model `φ[C] = tᵢ[Am]`, all other
/// coefficients zero (§III-A2 "Handling Single Neighbor").
pub fn learn_fixed(
    fm: &FeatureMatrix,
    ys: &[f64],
    orders: &NeighborOrders,
    ell: usize,
    alpha: f64,
    threads: usize,
) -> Vec<RidgeModel> {
    let n = fm.len();
    assert_eq!(ys.len(), n, "one target value per training tuple");
    assert!(n > 0, "cannot learn from an empty relation");
    let ell = ell.clamp(1, n);
    assert!(
        orders.depth() >= ell,
        "neighbor orders too shallow: depth {} < ell {}",
        orders.depth(),
        ell
    );
    Pool::new(threads)
        .parallel_map_indexed(n, |i| learn_one(fm, ys, orders.neighbors_of(i), ell, alpha))
}

/// Learns the individual model of one tuple from its sorted neighbor prefix.
pub fn learn_one(
    fm: &FeatureMatrix,
    ys: &[f64],
    neighbor_prefix: &[u32],
    ell: usize,
    alpha: f64,
) -> RidgeModel {
    debug_assert!(ell >= 1 && ell <= neighbor_prefix.len());
    if ell == 1 {
        // §III-A2: a single neighbor (the tuple itself) cannot support a
        // regression; pin the constant model.
        let own = neighbor_prefix[0] as usize;
        return RidgeModel::constant(ys[own], fm.n_features());
    }
    let rows = neighbor_prefix[..ell].iter().map(|&p| fm.point(p as usize));
    let targets: Vec<f64> = neighbor_prefix[..ell]
        .iter()
        .map(|&p| ys[p as usize])
        .collect();
    ridge_fit(rows, &targets, alpha).expect("finite training data")
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::paper_fig1;
    use iim_neighbors::brute::FeatureMatrix;

    fn fig1_setup() -> (FeatureMatrix, Vec<f64>, NeighborOrders) {
        let (rel, _) = paper_fig1();
        let rows: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &rows);
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let orders = NeighborOrders::build(&fm, 8);
        (fm, ys, orders)
    }

    #[test]
    fn paper_example_2_full_phi() {
        // Example 2 (ℓ = 4): φ₁ = φ₂ = (5.56, -0.87), φ₈ = (-4.36, 1.11).
        // The left-street value is exact; for the right street the exact
        // least-squares solution over {t5,t6,t7,t8} is (-4.4623, 1.1190)
        // (Σxy = 140.01, Σx² = 250.73 — verify by hand), which the paper
        // reports slightly off as (-4.36, 1.11). We pin exact arithmetic
        // tightly and the paper's rounding loosely.
        let (fm, ys, orders) = fig1_setup();
        let phi = learn_fixed(&fm, &ys, &orders, 4, 1e-9, 1);
        assert_eq!(phi.len(), 8);
        assert!((phi[0].phi[0] - 5.56).abs() < 0.01, "phi1 {:?}", phi[0]);
        assert!((phi[0].phi[1] + 0.87).abs() < 0.01);
        assert!((phi[1].phi[0] - 5.56).abs() < 0.01, "phi2 {:?}", phi[1]);
        assert!((phi[7].phi[0] + 4.4623).abs() < 0.001, "phi8 {:?}", phi[7]);
        assert!((phi[7].phi[1] - 1.1190).abs() < 0.001);
        assert!((phi[7].phi[0] + 4.36).abs() < 0.15);
        assert!((phi[7].phi[1] - 1.11).abs() < 0.02);
    }

    #[test]
    fn ell_one_is_constant_model() {
        let (fm, ys, orders) = fig1_setup();
        let phi = learn_fixed(&fm, &ys, &orders, 1, 1e-9, 1);
        for (i, model) in phi.iter().enumerate() {
            assert_eq!(model.phi[0], ys[i]);
            assert_eq!(model.phi[1], 0.0);
            assert_eq!(model.predict(&[123.0]), ys[i]);
        }
    }

    #[test]
    fn ell_n_equals_global_regression() {
        // Proposition 2's engine: with ℓ = n every tuple learns over all of
        // r, so all models coincide.
        let (fm, ys, orders) = fig1_setup();
        let phi = learn_fixed(&fm, &ys, &orders, 8, 1e-9, 1);
        for model in &phi[1..] {
            for (a, b) in model.phi.iter().zip(&phi[0].phi) {
                assert!((a - b).abs() < 1e-9);
            }
        }
        let global = iim_linalg::ridge_fit((0..8).map(|i| fm.point(i)), &ys, 1e-9).unwrap();
        for (a, b) in phi[0].phi.iter().zip(&global.phi) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn ell_clamped_to_n() {
        let (fm, ys, orders) = fig1_setup();
        let a = learn_fixed(&fm, &ys, &orders, 999, 1e-9, 1);
        let b = learn_fixed(&fm, &ys, &orders, 8, 1e-9, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.phi, y.phi);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (fm, ys, orders) = fig1_setup();
        let serial = learn_fixed(&fm, &ys, &orders, 4, 1e-9, 1);
        let parallel = learn_fixed(&fm, &ys, &orders, 4, 1e-9, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.phi, b.phi);
        }
    }
}
