//! Incremental candidate-model computation (§V-B, Proposition 3).
//!
//! The adaptive sweep must produce `φ⁽ℓ⁾` for a whole grid of ℓ values per
//! tuple. Because neighbor prefixes nest (Formula 13), [`ModelSweep`] in
//! incremental mode keeps one [`GramAccumulator`] per tuple and absorbs only
//! the `h` new neighbors between consecutive grid points — `O(m²h + m³)`
//! per model instead of the from-scratch `O(m²ℓ + m³)` (Table III). The
//! from-scratch mode exists as the paper's "straightforward" comparator
//! (Figures 12–13); both modes produce identical models.

use crate::learn::learn_one;
use iim_linalg::{GramAccumulator, RidgeModel};
use iim_neighbors::brute::FeatureMatrix;

/// The ℓ grid of the adaptive sweep: `{1, 1+h, 1+2h, …}` capped at
/// `min(n, ell_max)` (§V-A2, Example 5: `h = 3` over 8 tuples gives
/// `{1, 4, 7}`).
pub fn sweep_values(n: usize, step: usize, ell_max: Option<usize>) -> Vec<usize> {
    assert!(step >= 1, "stepping h must be at least 1");
    let cap = ell_max.map_or(n, |e| e.min(n)).max(1);
    (1..=cap).step_by(step).collect()
}

/// Produces the candidate models `φ⁽ℓ⁾` of one tuple for non-decreasing ℓ.
pub struct ModelSweep<'a> {
    fm: &'a FeatureMatrix,
    ys: &'a [f64],
    /// The tuple's sorted neighbor prefix (self first).
    prefix: &'a [u32],
    alpha: f64,
    /// `Some` in incremental mode, `None` re-learns from scratch.
    acc: Option<GramAccumulator>,
    absorbed: usize,
}

impl<'a> ModelSweep<'a> {
    /// Starts a sweep for the tuple whose neighbor prefix is `prefix`.
    pub fn new(
        fm: &'a FeatureMatrix,
        ys: &'a [f64],
        prefix: &'a [u32],
        alpha: f64,
        incremental: bool,
    ) -> Self {
        let acc = incremental.then(|| GramAccumulator::new(fm.n_features()));
        Self {
            fm,
            ys,
            prefix,
            alpha,
            acc,
            absorbed: 0,
        }
    }

    /// The model `φ⁽ℓ⁾`. Panics if called with decreasing ℓ in incremental
    /// mode or with `ell` beyond the prefix length.
    pub fn model_at(&mut self, ell: usize) -> RidgeModel {
        assert!(
            ell >= 1 && ell <= self.prefix.len(),
            "ell {ell} out of range"
        );
        match &mut self.acc {
            Some(acc) => {
                assert!(
                    ell >= self.absorbed,
                    "incremental sweep requires non-decreasing ell"
                );
                // Absorb Formula 14's increment T^(ℓ+h) \ T^(ℓ).
                for &p in &self.prefix[self.absorbed..ell] {
                    acc.add_row(self.fm.point(p as usize), self.ys[p as usize]);
                }
                self.absorbed = ell;
                if ell == 1 {
                    // §III-A2 single-neighbor special case.
                    let own = self.prefix[0] as usize;
                    RidgeModel::constant(self.ys[own], self.fm.n_features())
                } else {
                    acc.solve(self.alpha).expect("finite training data")
                }
            }
            None => learn_one(self.fm, self.ys, self.prefix, ell, self.alpha),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::paper_fig1;
    use iim_neighbors::NeighborOrders;

    fn setup() -> (FeatureMatrix, Vec<f64>, NeighborOrders) {
        let (rel, _) = paper_fig1();
        let rows: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &rows);
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let orders = NeighborOrders::build(&fm, 8);
        (fm, ys, orders)
    }

    #[test]
    fn sweep_values_grid() {
        assert_eq!(sweep_values(8, 1, None), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        // Example 5: h = 3 considers {1, 4, 7}.
        assert_eq!(sweep_values(8, 3, None), vec![1, 4, 7]);
        assert_eq!(sweep_values(8, 3, Some(5)), vec![1, 4]);
        assert_eq!(sweep_values(3, 10, None), vec![1]);
        assert_eq!(sweep_values(10, 2, Some(100)), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    #[should_panic(expected = "stepping h")]
    fn sweep_rejects_zero_step() {
        sweep_values(8, 0, None);
    }

    #[test]
    fn incremental_equals_scratch_on_every_ell() {
        let (fm, ys, orders) = setup();
        for tuple in 0..8 {
            let prefix = orders.neighbors_of(tuple);
            let mut inc = ModelSweep::new(&fm, &ys, prefix, 1e-9, true);
            let mut scratch = ModelSweep::new(&fm, &ys, prefix, 1e-9, false);
            for ell in 1..=8 {
                let a = inc.model_at(ell);
                let b = scratch.model_at(ell);
                for (x, y) in a.phi.iter().zip(&b.phi) {
                    assert!((x - y).abs() < 1e-7, "tuple {tuple} ell {ell}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn incremental_with_stepping_matches() {
        let (fm, ys, orders) = setup();
        let prefix = orders.neighbors_of(1);
        let mut inc = ModelSweep::new(&fm, &ys, prefix, 1e-9, true);
        for ell in [1usize, 4, 7] {
            let a = inc.model_at(ell);
            let b = learn_one(&fm, &ys, prefix, ell, 1e-9);
            for (x, y) in a.phi.iter().zip(&b.phi) {
                assert!((x - y).abs() < 1e-7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn incremental_rejects_backwards() {
        let (fm, ys, orders) = setup();
        let prefix = orders.neighbors_of(0);
        let mut sweep = ModelSweep::new(&fm, &ys, prefix, 1e-9, true);
        sweep.model_at(4);
        sweep.model_at(2);
    }

    #[test]
    fn ell_one_constant_in_both_modes() {
        let (fm, ys, orders) = setup();
        for incremental in [true, false] {
            let mut sweep = ModelSweep::new(&fm, &ys, orders.neighbors_of(2), 1e-9, incremental);
            let m = sweep.model_at(1);
            assert_eq!(m.phi, vec![ys[2], 0.0]);
        }
    }
}
