//! **IIM — Imputation via Individual Models** (Zhang, Song, Sun, Wang;
//! ICDE 2019). The paper's primary contribution, implemented in full.
//!
//! Missing numerical values face two problems the paper names *sparsity*
//! (an incomplete tuple has no complete neighbors sharing similar values,
//! so kNN-style value aggregation fails) and *heterogeneity* (no single
//! regression fits all tuples, so global/local shared-model regression
//! fails). IIM addresses both by learning a **regression model per complete
//! tuple** over that tuple's ℓ nearest neighbors, then imputing an
//! incomplete tuple from the *predictions* of the individual models of its
//! k nearest complete neighbors, aggregated by a mutual-voting weight.
//!
//! The pipeline, mirroring the paper's structure:
//!
//! * [`learn`] — Algorithm 1: per-tuple ridge models over ℓ learning
//!   neighbors (Formula 5), with the ℓ = 1 constant-model special case
//!   (§III-A2).
//! * [`impute`] — Algorithm 2: imputation neighbors (S1), per-neighbor
//!   candidates `t_x^j[Am] = (1, tx[F]) φ_j` (Formula 9, S2), and the
//!   candidate-voting combination of Formulas 10–12 (S3).
//! * [`adaptive`] — Algorithm 3: per-tuple selection of ℓ by validating
//!   each candidate model against the complete tuples it would impute,
//!   with stepping `h` (§V-A2).
//! * [`incremental`] — Proposition 3: the Gram sweep that turns each
//!   learning step from `O(m²ℓ)` into `O(m²h)` (Table III); also provides
//!   the from-scratch variant the paper benchmarks against (Figure 12).
//! * [`imputer`] — the [`Iim`] front end: an
//!   [`AttrEstimator`](iim_data::AttrEstimator) so the shared
//!   per-attribute driver (and thus the whole-relation
//!   [`Imputer`](iim_data::Imputer) protocol) can run IIM next to every
//!   baseline; plus [`IimModel`] for the explicit two-phase (offline learn
//!   / online impute) API.
//!
//! # Quick start
//!
//! ```
//! use iim_core::{IimConfig, IimModel};
//! use iim_data::{paper_fig1, AttrTask};
//!
//! // Figure 1 of the paper: 8 complete 2-d tuples, tx = (5, ?) with truth 1.8.
//! let (relation, _tx) = paper_fig1();
//! let task = AttrTask::new(&relation, vec![0], 1);
//! let cfg = IimConfig { k: 3, ..IimConfig::default() };
//! let model = IimModel::learn(&task, &cfg).unwrap();
//! let imputed = model.impute(&[5.0]);
//! assert!((imputed - 1.8).abs() < 0.7); // kNN value-averaging gives ~3.4
//! ```

pub mod adaptive;
pub mod config;
pub mod impute;
pub mod imputer;
pub mod incremental;
pub mod learn;
pub mod multiple;

pub use adaptive::{adaptive_learn, AdaptiveOutcome};
pub use config::{AdaptiveConfig, IimConfig, IndexChoice, Learning, Weighting};
pub use impute::{
    combine_candidates, combine_candidates_with, impute_candidates, impute_candidates_into,
    impute_with_scratch, ImputeScratch,
};
pub use imputer::{Iim, IimModel, IIM_ABSORB_TOLERANCE};
pub use learn::learn_fixed;
pub use multiple::ImputationDistribution;
