//! Configuration of the IIM pipeline.

pub use iim_neighbors::IndexChoice;

/// How the learning neighbors for individual models are chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Learning {
    /// One fixed ℓ for every tuple (Algorithm 1).
    Fixed {
        /// Number of learning neighbors, `1 ≤ ℓ ≤ n`.
        ell: usize,
    },
    /// Per-tuple ℓ selected by validation (Algorithm 3).
    Adaptive(AdaptiveConfig),
}

/// Parameters of the adaptive sweep (Algorithm 3 + §V-A2/§V-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Stepping `h ≥ 1`: candidate values ℓ ∈ {1, 1+h, 1+2h, …} (§V-A2,
    /// Example 5). `h = 1` evaluates every ℓ.
    pub step: usize,
    /// Upper bound on swept ℓ. `None` sweeps to `n` like the paper;
    /// the harness caps it to bound Figure 12 runtimes (reported whenever
    /// used).
    pub ell_max: Option<usize>,
    /// `true` uses the Proposition-3 incremental Gram sweep; `false`
    /// re-learns each candidate model from scratch (the paper's
    /// "straightforward" comparator in Figures 12–13). Both produce
    /// identical models.
    pub incremental: bool,
    /// Validation neighbor count for Algorithm 3 Line 4. `None` uses the
    /// imputation `k` exactly as the paper writes it; a fixed value keeps
    /// the per-tuple validation set usable when sweeping tiny imputation
    /// k (Figures 9–10) — with `k = 1` the paper-literal rule validates
    /// each candidate model on a single tuple and the arg-min over the ℓ
    /// grid overfits badly.
    pub validation_k: Option<usize>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            step: 1,
            ell_max: None,
            incremental: true,
            validation_k: None,
        }
    }
}

/// How the k imputation candidates are aggregated (Algorithm 2, S3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// The paper's mutual-voting weights (Formulas 11–12): candidates close
    /// to the other candidates weigh more, outliers are suppressed.
    #[default]
    MutualVote,
    /// Uniform `1/|Tx|` weights — the setting under which IIM with ℓ = 1
    /// degenerates to kNN (Proposition 1).
    Uniform,
    /// Weights proportional to the inverse distance between `tx` and the
    /// suggesting neighbor on `F` (the classic weighted-kNN aggregation the
    /// paper cites as an alternative in §II-A2); kept as an ablation.
    InverseDistance,
}

/// Full IIM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IimConfig {
    /// Number of imputation neighbors `k` (Algorithm 2; also the validation
    /// neighbor count in Algorithm 3 Line 4).
    pub k: usize,
    /// Ridge regularization `α` of Formula 5. The paper's worked examples
    /// correspond to `α ≈ 0`; the default `1e-6` is a numerical guard, not
    /// a tuning knob.
    pub alpha: f64,
    /// Learning-neighbor policy.
    pub learning: Learning,
    /// Candidate aggregation.
    pub weighting: Weighting,
    /// Worker threads for the (embarrassingly parallel) learning phases.
    /// `0` uses the process default ([`iim_exec::default_threads`]:
    /// the CLI's `--threads`, the `IIM_THREADS` environment variable, or
    /// one per available core). The learned models are bitwise-identical
    /// for every worker count.
    pub threads: usize,
    /// Neighbor-search index built at fit time and stored by the model
    /// (the CLI's `--index`). [`IndexChoice::Auto`] picks by `(n, |F|)`;
    /// the choice can never change an imputation — only its latency
    /// (see [`iim_neighbors::index`]).
    pub index: IndexChoice,
}

impl Default for IimConfig {
    fn default() -> Self {
        Self {
            k: 10,
            alpha: 1e-6,
            learning: Learning::Adaptive(AdaptiveConfig::default()),
            weighting: Weighting::MutualVote,
            threads: 0,
            index: IndexChoice::Auto,
        }
    }
}

impl IimConfig {
    /// Fixed-ℓ configuration with paper-default everything else.
    pub fn fixed(ell: usize, k: usize) -> Self {
        Self {
            k,
            learning: Learning::Fixed { ell },
            ..Self::default()
        }
    }

    /// Adaptive configuration with stepping `h` and an optional sweep cap.
    pub fn adaptive(step: usize, ell_max: Option<usize>, k: usize) -> Self {
        Self {
            k,
            learning: Learning::Adaptive(AdaptiveConfig {
                step,
                ell_max,
                ..AdaptiveConfig::default()
            }),
            ..Self::default()
        }
    }

    /// Resolved worker-thread count (`0` → the process default).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            iim_exec::default_threads()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let cfg = IimConfig::default();
        assert_eq!(cfg.weighting, Weighting::MutualVote);
        assert!(matches!(cfg.learning, Learning::Adaptive(ref a) if a.step == 1));
        assert!(cfg.alpha <= 1e-6);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn constructors() {
        let f = IimConfig::fixed(5, 3);
        assert_eq!(f.learning, Learning::Fixed { ell: 5 });
        assert_eq!(f.k, 3);
        let a = IimConfig::adaptive(10, Some(200), 7);
        match a.learning {
            Learning::Adaptive(ref c) => {
                assert_eq!(c.step, 10);
                assert_eq!(c.ell_max, Some(200));
                assert!(c.incremental);
            }
            _ => panic!("expected adaptive"),
        }
    }
}
