//! Multiple imputation: the paper's §VII future-work direction
//! ("answer queries directly over multiple imputation candidates suggested
//! by different individual models, rather than determining exactly one
//! imputation").
//!
//! Algorithm 2 already produces k candidate values with mutual-vote
//! weights before collapsing them into one number; [`ImputationDistribution`]
//! keeps that weighted candidate set alive so downstream consumers can do
//! uncertainty-aware query answering: expectations, quantiles, intervals,
//! or agreement checks.

use crate::config::Weighting;
use crate::imputer::IimModel;

/// A weighted set of imputation candidates for one query — the output of
/// Algorithm 2 *before* step S3 collapses it, with the S3 weights attached.
#[derive(Debug, Clone)]
pub struct ImputationDistribution {
    /// `(candidate value, weight)`; weights are normalized to sum to 1 and
    /// candidates are sorted ascending by value.
    pub candidates: Vec<(f64, f64)>,
}

impl ImputationDistribution {
    /// Builds from raw candidates and the configured weighting.
    pub(crate) fn new(mut weighted: Vec<(f64, f64)>) -> Self {
        let total: f64 = weighted.iter().map(|(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut weighted {
                *w /= total;
            }
        } else if !weighted.is_empty() {
            let u = 1.0 / weighted.len() as f64;
            for (_, w) in &mut weighted {
                *w = u;
            }
        }
        weighted.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self {
            candidates: weighted,
        }
    }

    /// The point imputation: the weighted mean (equals
    /// [`IimModel::impute`] under the same weighting).
    pub fn mean(&self) -> f64 {
        self.candidates.iter().map(|(v, w)| v * w).sum()
    }

    /// Weighted standard deviation of the candidates — the model-side
    /// uncertainty of the imputation (0 when all models agree).
    pub fn std(&self) -> f64 {
        let mean = self.mean();
        self.candidates
            .iter()
            .map(|(v, w)| w * (v - mean) * (v - mean))
            .sum::<f64>()
            .sqrt()
    }

    /// Weighted `q`-quantile (`0 ≤ q ≤ 1`) of the candidate set, by
    /// cumulative weight over the sorted candidates.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        debug_assert!(!self.candidates.is_empty());
        let mut acc = 0.0;
        for &(v, w) in &self.candidates {
            acc += w;
            if acc >= q - 1e-12 {
                return v;
            }
        }
        self.candidates.last().expect("non-empty").0
    }

    /// Central interval `[quantile((1-p)/2), quantile((1+p)/2)]` covering
    /// probability `p` of the candidate mass.
    pub fn interval(&self, p: f64) -> (f64, f64) {
        assert!((0.0..=1.0).contains(&p));
        let lo = (1.0 - p) / 2.0;
        (self.quantile(lo), self.quantile(1.0 - lo))
    }

    /// Candidate agreement in `[0, 1]`: 1 when all candidates coincide,
    /// decreasing with relative spread. Useful to flag imputations the
    /// individual models disagree on (the heterogeneity signal of
    /// Figure 3).
    pub fn agreement(&self) -> f64 {
        let mean = self.mean().abs().max(1e-12);
        1.0 / (1.0 + self.std() / mean)
    }
}

impl IimModel {
    /// The full candidate distribution for a query (Algorithm 2 without
    /// the final collapse), under the model's configured weighting.
    pub fn impute_distribution(&self, query: &[f64]) -> ImputationDistribution {
        // Same S1+S2 as point serving: through the stored index, with the
        // same per-thread scratch the point path uses.
        crate::imputer::with_serving_scratch(|scratch| {
            crate::impute::impute_candidates_into(
                self.index(),
                self.models(),
                query,
                self.k(),
                scratch,
            );
            let cands = scratch.candidates();
            let weighted = match self.weighting() {
                Weighting::Uniform => cands.iter().map(|(_, c)| (*c, 1.0)).collect(),
                Weighting::InverseDistance => cands
                    .iter()
                    .map(|(nb, c)| (*c, 1.0 / nb.dist.max(1e-12)))
                    .collect(),
                Weighting::MutualVote => {
                    // Formula 11–12 weights (unnormalized; new() normalizes).
                    let k = cands.len();
                    let mut out = Vec::with_capacity(k);
                    for i in 0..k {
                        let ci = cands[i].1;
                        let cxi: f64 = cands.iter().map(|(_, cj)| (ci - cj).abs()).sum();
                        out.push((
                            ci,
                            if cxi > 1e-12 {
                                1.0 / cxi
                            } else {
                                f64::MAX / k as f64
                            },
                        ));
                    }
                    out
                }
            };
            ImputationDistribution::new(weighted)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IimConfig;
    use iim_data::{paper_fig1, AttrTask};

    fn fig1_model(k: usize) -> IimModel {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k,
            learning: crate::config::Learning::Fixed { ell: 4 },
            ..Default::default()
        };
        IimModel::learn(&task, &cfg).unwrap()
    }

    #[test]
    fn distribution_mean_matches_point_imputation() {
        let model = fig1_model(3);
        let dist = model.impute_distribution(&[5.0]);
        assert!((dist.mean() - model.impute(&[5.0])).abs() < 1e-9);
        assert_eq!(dist.candidates.len(), 3);
        let wsum: f64 = dist.candidates.iter().map(|(_, w)| w).sum();
        assert!((wsum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig1_candidates_tight_interval() {
        // Figure 1: candidates 1.133, 1.133, 1.228 — agreeing models give a
        // narrow interval around 1.15 that excludes kNN's 3.43.
        let model = fig1_model(3);
        let dist = model.impute_distribution(&[5.0]);
        let (lo, hi) = dist.interval(0.9);
        assert!(lo >= 1.1 && hi <= 1.3, "interval [{lo},{hi}]");
        assert!(dist.std() < 0.1);
        assert!(dist.agreement() > 0.9);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let model = fig1_model(5);
        let dist = model.impute_distribution(&[2.0]);
        let lo = dist.candidates.first().unwrap().0;
        let hi = dist.candidates.last().unwrap().0;
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = dist.quantile(q);
            assert!(v >= prev - 1e-12, "quantiles must be monotone");
            assert!(v >= lo && v <= hi);
            prev = v;
        }
    }

    #[test]
    fn identical_candidates_have_full_agreement() {
        let dist = ImputationDistribution::new(vec![(2.0, 1.0), (2.0, 3.0), (2.0, 1.0)]);
        assert_eq!(dist.mean(), 2.0);
        assert_eq!(dist.std(), 0.0);
        assert_eq!(dist.agreement(), 1.0);
        assert_eq!(dist.interval(0.95), (2.0, 2.0));
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let dist = ImputationDistribution::new(vec![(1.0, 0.0), (3.0, 0.0)]);
        assert!((dist.mean() - 2.0).abs() < 1e-12);
    }
}
