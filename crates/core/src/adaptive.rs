//! Adaptive learning (Algorithm 3): a per-tuple number of learning
//! neighbors, selected by validating candidate models on complete tuples.
//!
//! For every complete tuple `tᵢ`, the sweep learns candidate models
//! `φᵢ⁽ℓ⁾` over the ℓ grid and charges each model
//! `cost[i][ℓ] += (tⱼ[Am] − (1, tⱼ[F]) φᵢ⁽ℓ⁾)²` for every *validation*
//! tuple `tⱼ` that would consult `tᵢ`'s model — i.e. every `tⱼ` with
//! `tᵢ ∈ NN(tⱼ, F, k)`. The ℓ with minimal total cost wins (Lines 8–10).
//!
//! Following the paper's Example 4, the validation neighborhood excludes
//! `tⱼ` itself (`T₁ = {t₂, t₃, t₄}` for `t₁`), while *learning*
//! neighborhoods include the tuple (`ℓ = 1 ⇒ Tᵢ = {tᵢ}`, §III-A2).

use crate::config::AdaptiveConfig;
use crate::incremental::{sweep_values, ModelSweep};
use iim_exec::Pool;
use iim_linalg::RidgeModel;
use iim_neighbors::{brute::FeatureMatrix, NeighborOrders};

/// Result of adaptive learning.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The selected model `φᵢ` per tuple.
    pub models: Vec<RidgeModel>,
    /// The selected `ℓ*ᵢ` per tuple.
    pub chosen_ell: Vec<u32>,
    /// The ℓ grid that was swept.
    pub swept: Vec<usize>,
}

/// Runs Algorithm 3. See the module docs for the cost definition.
///
/// * `k` — validation neighbor count (the same `k` as the imputation
///   phase, Algorithm 3 Line 4).
/// * `cfg.step` — stepping `h` (§V-A2).
/// * `cfg.incremental` — Proposition-3 Gram updates vs from-scratch
///   re-learning; identical output either way.
pub fn adaptive_learn(
    fm: &FeatureMatrix,
    ys: &[f64],
    orders: &NeighborOrders,
    k: usize,
    cfg: &AdaptiveConfig,
    alpha: f64,
    threads: usize,
) -> AdaptiveOutcome {
    let (outcome, _) = adaptive_learn_detailed(fm, ys, orders, k, cfg, alpha, threads, false);
    outcome
}

/// [`adaptive_learn`] that can also return the full `cost[i][ℓ]` table
/// (flattened `n x |swept|`, row-major) for diagnostics and tests.
#[allow(clippy::too_many_arguments)]
pub fn adaptive_learn_detailed(
    fm: &FeatureMatrix,
    ys: &[f64],
    orders: &NeighborOrders,
    k: usize,
    cfg: &AdaptiveConfig,
    alpha: f64,
    threads: usize,
    record_costs: bool,
) -> (AdaptiveOutcome, Option<Vec<f64>>) {
    let n = fm.len();
    assert!(n > 0, "cannot learn from an empty relation");
    assert!(k >= 1, "validation requires k >= 1");
    let swept = sweep_values(n, cfg.step, cfg.ell_max.map(|e| e.min(orders.depth())));
    assert!(
        *swept.last().expect("non-empty sweep") <= orders.depth(),
        "neighbor orders too shallow for the sweep"
    );

    // Reverse validator map: validators of i = all j with i ∈ NN(tj, F, k),
    // self excluded (Example 4). Tuples nobody consults fall back to
    // self-validation so their cost is still informative. Stored as one
    // flattened CSR block (offsets + data) instead of n little `Vec`s —
    // two allocations total, cache-friendly row reads in the sweep below.
    let k_eff = k.min(n.saturating_sub(1));
    let each_validated = |visit: &mut dyn FnMut(usize, u32)| {
        for j in 0..n {
            let mut taken = 0;
            for &p in orders.neighbors_of(j) {
                if p as usize == j {
                    continue;
                }
                visit(p as usize, j as u32);
                taken += 1;
                if taken == k_eff {
                    break;
                }
            }
        }
    };
    let mut counts = vec![0u32; n];
    each_validated(&mut |p, _| counts[p] += 1);
    // Rows nobody consults get one self-validation slot.
    let mut offsets = vec![0usize; n + 1];
    for i in 0..n {
        offsets[i + 1] = offsets[i] + (counts[i].max(1) as usize);
    }
    let mut validator_data = vec![0u32; offsets[n]];
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            validator_data[offsets[i]] = i as u32;
        }
    }
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    // Same j-ascending fill order as the old per-Vec pushes, so each row
    // lists its validators identically and cost sums keep their FP order.
    each_validated(&mut |p, j| {
        validator_data[cursor[p]] = j;
        cursor[p] += 1;
    });

    struct PerTuple {
        model: RidgeModel,
        ell: u32,
        costs: Option<Vec<f64>>,
    }

    let results: Vec<PerTuple> = Pool::new(threads).parallel_map_indexed(n, |i| {
        let prefix = orders.neighbors_of(i);
        let mut sweep = ModelSweep::new(fm, ys, prefix, alpha, cfg.incremental);
        let mut best: Option<(f64, usize, RidgeModel)> = None;
        let mut costs = record_costs.then(|| Vec::with_capacity(swept.len()));
        for &ell in &swept {
            let model = sweep.model_at(ell);
            let mut cost = 0.0;
            for &j in &validator_data[offsets[i]..offsets[i + 1]] {
                let pred = model.predict(fm.point(j as usize));
                let err = ys[j as usize] - pred;
                cost += err * err;
            }
            if let Some(c) = costs.as_mut() {
                c.push(cost);
            }
            // Strict '<' keeps the smallest ℓ on ties, matching the
            // argmin-in-order semantics of Line 9.
            let better = best.as_ref().is_none_or(|(b, _, _)| cost < *b);
            if better {
                best = Some((cost, ell, model));
            }
        }
        let (_, ell, model) = best.expect("sweep is non-empty");
        PerTuple {
            model,
            ell: ell as u32,
            costs,
        }
    });

    let mut models = Vec::with_capacity(n);
    let mut chosen = Vec::with_capacity(n);
    let mut table = record_costs.then(|| Vec::with_capacity(n * swept.len()));
    for r in results {
        models.push(r.model);
        chosen.push(r.ell);
        if let (Some(t), Some(c)) = (table.as_mut(), r.costs) {
            t.extend(c);
        }
    }
    (
        AdaptiveOutcome {
            models,
            chosen_ell: chosen,
            swept,
        },
        table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::paper_fig1;

    fn setup() -> (FeatureMatrix, Vec<f64>, NeighborOrders) {
        let (rel, _) = paper_fig1();
        let rows: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &rows);
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let orders = NeighborOrders::build(&fm, 8);
        (fm, ys, orders)
    }

    #[test]
    fn paper_example_4_cost_table_and_selection() {
        // Example 4 (k = 3): t2's aggregated costs over ℓ = 1..8 are
        // {3.73, 3.67, 0.31, 0.09, 1.47, 2.36, 3.03, 3.65}; ℓ*₂ = 4 and
        // φ₂ = (5.56, -0.87).
        //
        // We pin the *exact-arithmetic* values, hand-verified for ℓ ≤ 4
        // (e.g. ℓ = 2: the line through (0.8, 4.6), (0, 5.8) is exactly
        // y = 5.8 - 1.5x, giving 0 + 0.85² + 1.75² = 3.785). The paper's
        // table matches to its display rounding for ℓ ≥ 3; its ℓ = 1 entry
        // (3.73) corresponds to a dataset-mean constant model whereas
        // §III-A2 prescribes φ[C] = t₂[A2] = 4.6 (cost 4.04) — either way
        // ℓ = 1 loses by an order of magnitude and the selection is
        // unaffected.
        let (fm, ys, orders) = setup();
        let cfg = AdaptiveConfig {
            step: 1,
            ell_max: None,
            incremental: true,
            ..AdaptiveConfig::default()
        };
        let (outcome, costs) = adaptive_learn_detailed(&fm, &ys, &orders, 3, &cfg, 1e-9, 1, true);
        let costs = costs.expect("recorded");
        let t2 = &costs[8..16]; // tuple index 1, 8 sweep points
        let exact = [4.04, 3.785, 0.3124, 0.0919, 1.4723, 2.3559, 3.0334, 3.6487];
        for (ell0, (got, want)) in t2.iter().zip(&exact).enumerate() {
            assert!(
                (got - want).abs() < 0.005,
                "cost[2][{}]: got {got}, want {want}",
                ell0 + 1
            );
        }
        // Paper's published (rounded) values stay within 0.15 for ℓ ≥ 3.
        let paper = [0.31, 0.09, 1.47, 2.36, 3.03, 3.65];
        for (got, want) in t2[2..].iter().zip(&paper) {
            assert!((got - want).abs() < 0.15);
        }
        assert_eq!(outcome.chosen_ell[1], 4, "ℓ*₂");
        assert!((outcome.models[1].phi[0] - 5.56).abs() < 0.01);
        assert!((outcome.models[1].phi[1] + 0.87).abs() < 0.01);
    }

    #[test]
    fn paper_example_5_stepping() {
        // h = 3 considers ℓ ∈ {1, 4, 7}; t2 still selects ℓ = 4 with
        // φ₂ = (5.56, -0.87).
        let (fm, ys, orders) = setup();
        let cfg = AdaptiveConfig {
            step: 3,
            ell_max: None,
            incremental: true,
            ..AdaptiveConfig::default()
        };
        let (outcome, costs) = adaptive_learn_detailed(&fm, &ys, &orders, 3, &cfg, 1e-9, 1, true);
        assert_eq!(outcome.swept, vec![1, 4, 7]);
        let t2 = &costs.unwrap()[3..6];
        assert!((t2[1] - 0.0919).abs() < 0.005, "cost[2][4] {}", t2[1]);
        assert!((t2[2] - 3.0334).abs() < 0.005, "cost[2][7] {}", t2[2]);
        assert_eq!(outcome.chosen_ell[1], 4);
        assert!((outcome.models[1].phi[0] - 5.56).abs() < 0.01);
    }

    #[test]
    fn incremental_and_straightforward_agree() {
        let (fm, ys, orders) = setup();
        for step in [1usize, 2, 3] {
            let inc = AdaptiveConfig {
                step,
                ell_max: None,
                incremental: true,
                ..AdaptiveConfig::default()
            };
            let scr = AdaptiveConfig {
                step,
                ell_max: None,
                incremental: false,
                ..AdaptiveConfig::default()
            };
            let a = adaptive_learn(&fm, &ys, &orders, 3, &inc, 1e-9, 1);
            let b = adaptive_learn(&fm, &ys, &orders, 3, &scr, 1e-9, 1);
            assert_eq!(a.chosen_ell, b.chosen_ell, "step {step}");
            for (x, y) in a.models.iter().zip(&b.models) {
                for (p, q) in x.phi.iter().zip(&y.phi) {
                    assert!((p - q).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let (fm, ys, orders) = setup();
        let cfg = AdaptiveConfig::default();
        let a = adaptive_learn(&fm, &ys, &orders, 3, &cfg, 1e-9, 1);
        let b = adaptive_learn(&fm, &ys, &orders, 3, &cfg, 1e-9, 4);
        assert_eq!(a.chosen_ell, b.chosen_ell);
    }

    #[test]
    fn ell_max_caps_sweep() {
        let (fm, ys, orders) = setup();
        let cfg = AdaptiveConfig {
            step: 1,
            ell_max: Some(3),
            incremental: true,
            ..AdaptiveConfig::default()
        };
        let out = adaptive_learn(&fm, &ys, &orders, 3, &cfg, 1e-9, 1);
        assert_eq!(out.swept, vec![1, 2, 3]);
        assert!(out.chosen_ell.iter().all(|&l| l <= 3));
    }

    #[test]
    fn singleton_relation_falls_back_to_self_validation() {
        let fm = FeatureMatrix::from_dense(1, vec![0], vec![2.0]);
        let ys = vec![5.0];
        let orders = NeighborOrders::build(&fm, 1);
        let cfg = AdaptiveConfig::default();
        let out = adaptive_learn(&fm, &ys, &orders, 3, &cfg, 1e-6, 1);
        assert_eq!(out.models.len(), 1);
        assert_eq!(out.chosen_ell[0], 1);
        assert_eq!(out.models[0].predict(&[2.0]), 5.0);
    }
}
