//! The IIM front end: a two-phase model ([`IimModel`]) and the
//! [`AttrEstimator`] adapter ([`Iim`]) that plugs IIM into the shared
//! per-attribute driver next to every baseline.

use crate::adaptive::adaptive_learn;
use crate::config::{IimConfig, Learning, Weighting};
use crate::impute::{combine_candidates, impute_candidates};
use crate::learn::learn_fixed;
use iim_data::{AttrEstimator, AttrPredictor, AttrTask, ImputeError};
use iim_linalg::RidgeModel;
use iim_neighbors::{brute::FeatureMatrix, NeighborOrders};

/// A learned IIM model for one incomplete attribute: the offline phase's
/// output (`Φ` plus the training tuples), ready to impute any number of
/// queries online.
///
/// This is the canonical fitted form behind the workspace's fit/serve
/// protocol: `PerAttributeImputer::<Iim>::fit` returns a
/// [`FittedImputer`](iim_data::FittedImputer) holding one `IimModel` per
/// target attribute (each plugged in through its [`AttrPredictor`] impl).
pub struct IimModel {
    fm: FeatureMatrix,
    models: Vec<RidgeModel>,
    chosen_ell: Vec<u32>,
    k: usize,
    weighting: Weighting,
}

impl IimModel {
    /// Offline phase: learns the individual models of all training tuples
    /// of `task` (Algorithm 1 for [`Learning::Fixed`], Algorithm 3 for
    /// [`Learning::Adaptive`]).
    pub fn learn(task: &AttrTask<'_>, cfg: &IimConfig) -> Result<Self, ImputeError> {
        if task.n_train() == 0 {
            return Err(ImputeError::NoTrainingData {
                target: task.target,
            });
        }
        let fm = FeatureMatrix::gather(task.rel, &task.features, &task.train_rows);
        let ys: Vec<f64> = task
            .train_rows
            .iter()
            .map(|&r| task.target_value(r as usize))
            .collect();
        Ok(Self::learn_from_parts(fm, &ys, cfg))
    }

    /// [`IimModel::learn`] over pre-gathered parts (used by benches that
    /// need to time the phases in isolation).
    pub fn learn_from_parts(fm: FeatureMatrix, ys: &[f64], cfg: &IimConfig) -> Self {
        let n = fm.len();
        let threads = cfg.effective_threads();
        let pool = iim_exec::Pool::new(threads);
        let (models, chosen_ell) = match &cfg.learning {
            Learning::Fixed { ell } => {
                let ell = (*ell).clamp(1, n);
                let orders = NeighborOrders::build_on(&pool, &fm, ell);
                let models = learn_fixed(&fm, ys, &orders, ell, cfg.alpha, threads);
                (models, vec![ell as u32; n])
            }
            Learning::Adaptive(acfg) => {
                let vk_hint = acfg.validation_k.unwrap_or(cfg.k);
                let depth = acfg.ell_max.map_or(n, |e| e.min(n)).max(vk_hint.min(n)); // orders must also serve validation kNN
                let orders = NeighborOrders::build_on(&pool, &fm, depth.max(1));
                let vk = acfg.validation_k.unwrap_or(cfg.k).max(1);
                let out = adaptive_learn(&fm, ys, &orders, vk, acfg, cfg.alpha, threads);
                (out.models, out.chosen_ell)
            }
        };
        Self {
            fm,
            models,
            chosen_ell,
            k: cfg.k.max(1),
            weighting: cfg.weighting,
        }
    }

    /// Online phase (Algorithm 2): imputes one query from its feature
    /// vector (in the task's feature order).
    pub fn impute(&self, query: &[f64]) -> f64 {
        let cands = impute_candidates(&self.fm, &self.models, query, self.k);
        combine_candidates(&cands, self.weighting).expect("training set is non-empty")
    }

    /// The per-tuple ℓ actually used (constant under fixed learning).
    pub fn chosen_ell(&self) -> &[u32] {
        &self.chosen_ell
    }

    /// The individual regression parameters Φ, indexed like the training
    /// tuples.
    pub fn models(&self) -> &[RidgeModel] {
        &self.models
    }

    /// Number of training tuples.
    pub fn n_train(&self) -> usize {
        self.fm.len()
    }

    /// The gathered training features (crate-internal accessors for the
    /// multiple-imputation view).
    pub(crate) fn feature_matrix(&self) -> &FeatureMatrix {
        &self.fm
    }

    pub(crate) fn k(&self) -> usize {
        self.k
    }

    pub(crate) fn weighting(&self) -> Weighting {
        self.weighting
    }
}

impl AttrPredictor for IimModel {
    fn predict(&self, x: &[f64]) -> f64 {
        self.impute(x)
    }
}

/// IIM as a pluggable per-attribute estimator.
///
/// ```
/// use iim_core::{Iim, IimConfig};
/// use iim_data::{Imputer, PerAttributeImputer};
///
/// let (rel, tx) = iim_data::paper_fig1();
/// let iim = PerAttributeImputer::new(Iim::new(IimConfig { k: 3, ..Default::default() }));
/// // Offline phase once, then serve tx (and any other query) online.
/// let fitted = iim.fit(&rel).unwrap();
/// let served = fitted.impute_one(&tx).unwrap();
/// assert!(served[1].is_finite());
/// ```
pub struct Iim {
    cfg: IimConfig,
}

impl Iim {
    /// IIM with the given configuration.
    pub fn new(cfg: IimConfig) -> Self {
        Self { cfg }
    }

    /// Paper-default IIM: adaptive learning, mutual-vote aggregation.
    pub fn paper_default() -> Self {
        Self::new(IimConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &IimConfig {
        &self.cfg
    }
}

impl AttrEstimator for Iim {
    fn name(&self) -> &str {
        "IIM"
    }

    fn fit(&self, task: &AttrTask<'_>) -> Result<Box<dyn AttrPredictor>, ImputeError> {
        Ok(Box::new(IimModel::learn(task, &self.cfg)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::{paper_fig1, Imputer, PerAttributeImputer};

    #[test]
    fn fig1_fixed_ell_matches_example_3() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig::fixed(4, 3);
        let model = IimModel::learn(&task, &cfg).unwrap();
        let v = model.impute(&[5.0]);
        // 1.152 exact; the paper's rounded models give 1.194 (see
        // impute::tests::paper_example_3_end_to_end).
        assert!((v - 1.152).abs() < 0.005, "imputed {v}");
        assert!((v - 1.194).abs() < 0.05);
        assert_eq!(model.chosen_ell(), &[4; 8]);
        assert_eq!(model.n_train(), 8);
    }

    #[test]
    fn fig1_adaptive_beats_knn_and_glr() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k: 3,
            ..IimConfig::default()
        };
        let model = IimModel::learn(&task, &cfg).unwrap();
        let iim_v = model.impute(&[5.0]);
        let truth = 1.8;

        // kNN (value mean of t4,t5,t6): (3.2 + 3.0 + 4.1)/3 = 3.43.
        let knn_v: f64 = (3.2 + 3.0 + 4.1) / 3.0;
        // GLR prediction at 5.0.
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![rel.value(i, 0)]).collect();
        let glr = iim_linalg::ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).unwrap();
        let glr_v = glr.predict(&[5.0]);

        assert!(
            (iim_v - truth).abs() < (knn_v - truth).abs(),
            "IIM {iim_v} vs kNN {knn_v}"
        );
        assert!(
            (iim_v - truth).abs() < (glr_v - truth).abs(),
            "IIM {iim_v} vs GLR {glr_v}"
        );
    }

    #[test]
    fn driver_integration() {
        let (mut rel, tx) = paper_fig1();
        rel.push_row_opt(&tx);
        let iim = PerAttributeImputer::new(Iim::new(IimConfig {
            k: 3,
            ..Default::default()
        }));
        assert_eq!(iim.name(), "IIM");
        let filled = iim.impute(&rel).unwrap();
        assert_eq!(filled.missing_count(), 0);
        let v = filled.get(8, 1).unwrap();
        assert!((v - 1.8).abs() < 0.7, "imputed {v}");
    }

    #[test]
    fn empty_training_is_error() {
        let mut rel = iim_data::Relation::with_capacity(iim_data::Schema::anonymous(2), 1);
        rel.push_row_opt(&[Some(1.0), None]);
        let task = AttrTask::new(&rel, vec![0], 1);
        assert!(matches!(
            IimModel::learn(&task, &IimConfig::default()),
            Err(ImputeError::NoTrainingData { target: 1 })
        ));
    }

    #[test]
    fn k_clamps_to_training_size() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k: 100,
            ..IimConfig::default()
        };
        let model = IimModel::learn(&task, &cfg).unwrap();
        let v = model.impute(&[5.0]);
        assert!(v.is_finite());
    }
}
