//! The IIM front end: a two-phase model ([`IimModel`]) and the
//! [`AttrEstimator`] adapter ([`Iim`]) that plugs IIM into the shared
//! per-attribute driver next to every baseline.

use crate::adaptive::adaptive_learn;
use crate::config::{IimConfig, Learning, Weighting};
use crate::impute::{impute_with_scratch, ImputeScratch};
use crate::learn::learn_fixed;
use iim_data::{AttrEstimator, AttrPredictor, AttrTask, ImputeError};
use iim_linalg::RidgeModel;
use iim_neighbors::{brute::FeatureMatrix, NeighborIndex, NeighborOrders};
use std::cell::Cell;

/// A learned IIM model for one incomplete attribute: the offline phase's
/// output (`Φ` plus the training tuples behind a stored
/// [`NeighborIndex`]), ready to impute any number of queries online.
///
/// This is the canonical fitted form behind the workspace's fit/serve
/// protocol: `PerAttributeImputer::<Iim>::fit` returns a
/// [`FittedImputer`](iim_data::FittedImputer) holding one `IimModel` per
/// target attribute (each plugged in through its [`AttrPredictor`] impl).
///
/// Serving is zero-allocation at steady state: `impute` searches the
/// index with per-thread scratch ([`ImputeScratch`]), so batch drivers
/// fanning queries across workers each reuse their own buffers. Which
/// index variant was built ([`IimConfig::index`]) never changes an
/// imputation — only its latency.
pub struct IimModel {
    index: NeighborIndex,
    models: Vec<RidgeModel>,
    chosen_ell: Vec<u32>,
    k: usize,
    weighting: Weighting,
}

thread_local! {
    /// Per-thread serving scratch (see [`iim_exec::with_tls_scratch`] for
    /// the take/put contract).
    static SCRATCH: Cell<ImputeScratch> = Cell::new(ImputeScratch::new());
}

/// Runs `f` with this thread's serving scratch — shared by
/// [`IimModel::impute`] and the multiple-imputation view so every
/// single-query entry point is allocation-free at steady state.
pub(crate) fn with_serving_scratch<R>(f: impl FnOnce(&mut ImputeScratch) -> R) -> R {
    iim_exec::with_tls_scratch(&SCRATCH, f)
}

impl IimModel {
    /// Offline phase: learns the individual models of all training tuples
    /// of `task` (Algorithm 1 for [`Learning::Fixed`], Algorithm 3 for
    /// [`Learning::Adaptive`]).
    pub fn learn(task: &AttrTask<'_>, cfg: &IimConfig) -> Result<Self, ImputeError> {
        if task.n_train() == 0 {
            return Err(ImputeError::NoTrainingData {
                target: task.target,
            });
        }
        let fm = FeatureMatrix::gather(task.rel, &task.features, &task.train_rows);
        let ys: Vec<f64> = task
            .train_rows
            .iter()
            .map(|&r| task.target_value(r as usize))
            .collect();
        Ok(Self::learn_from_parts(fm, &ys, cfg))
    }

    /// [`IimModel::learn`] over pre-gathered parts (used by benches that
    /// need to time the phases in isolation).
    ///
    /// Builds the serving [`NeighborIndex`] first ([`IimConfig::index`])
    /// and routes the offline neighbor-order construction through it, so
    /// one index serves both phases.
    pub fn learn_from_parts(fm: FeatureMatrix, ys: &[f64], cfg: &IimConfig) -> Self {
        let n = fm.len();
        let threads = cfg.effective_threads();
        let pool = iim_exec::Pool::new(threads);
        let index = NeighborIndex::build(fm, cfg.index);
        let fm = index.matrix();
        let (models, chosen_ell) = match &cfg.learning {
            Learning::Fixed { ell } => {
                let ell = (*ell).clamp(1, n);
                let orders = NeighborOrders::build_from_index(&pool, &index, ell);
                let models = learn_fixed(fm, ys, &orders, ell, cfg.alpha, threads);
                (models, vec![ell as u32; n])
            }
            Learning::Adaptive(acfg) => {
                let vk_hint = acfg.validation_k.unwrap_or(cfg.k);
                let depth = acfg.ell_max.map_or(n, |e| e.min(n)).max(vk_hint.min(n)); // orders must also serve validation kNN
                let orders = NeighborOrders::build_from_index(&pool, &index, depth.max(1));
                let vk = acfg.validation_k.unwrap_or(cfg.k).max(1);
                let out = adaptive_learn(fm, ys, &orders, vk, acfg, cfg.alpha, threads);
                (out.models, out.chosen_ell)
            }
        };
        Self {
            index,
            models,
            chosen_ell,
            k: cfg.k.max(1),
            weighting: cfg.weighting,
        }
    }

    /// Online phase (Algorithm 2): imputes one query from its feature
    /// vector (in the task's feature order).
    ///
    /// Serves through the stored index with per-thread scratch — no
    /// allocation at steady state. Use [`IimModel::impute_with`] to manage
    /// the scratch explicitly (e.g. one per worker in a custom batch
    /// loop).
    pub fn impute(&self, query: &[f64]) -> f64 {
        with_serving_scratch(|scratch| self.impute_with(query, scratch))
    }

    /// [`IimModel::impute`] with caller-owned scratch. Bit-identical to
    /// `impute` whatever state `scratch` arrives in.
    pub fn impute_with(&self, query: &[f64], scratch: &mut ImputeScratch) -> f64 {
        impute_with_scratch(
            &self.index,
            &self.models,
            query,
            self.k,
            self.weighting,
            scratch,
        )
        .expect("training set is non-empty")
    }

    /// The per-tuple ℓ actually used (constant under fixed learning).
    pub fn chosen_ell(&self) -> &[u32] {
        &self.chosen_ell
    }

    /// The individual regression parameters Φ, indexed like the training
    /// tuples.
    pub fn models(&self) -> &[RidgeModel] {
        &self.models
    }

    /// Number of training tuples.
    pub fn n_train(&self) -> usize {
        self.index.len()
    }

    /// The stored neighbor-search index (`"brute"` or `"kdtree"` via
    /// [`NeighborIndex::kind`]).
    pub fn index(&self) -> &NeighborIndex {
        &self.index
    }

    /// The gathered training features.
    pub fn feature_matrix(&self) -> &FeatureMatrix {
        self.index.matrix()
    }

    /// The imputation neighbor count `k` (Algorithm 2).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The candidate-aggregation policy.
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// Reassembles a learned model from its parts (the snapshot decode
    /// path): the serving index, one ridge model per training tuple, the
    /// per-tuple ℓ actually chosen, and the serving configuration.
    /// Panics when `models`/`chosen_ell` do not line up with the index.
    pub fn from_parts(
        index: NeighborIndex,
        models: Vec<RidgeModel>,
        chosen_ell: Vec<u32>,
        k: usize,
        weighting: Weighting,
    ) -> Self {
        assert_eq!(models.len(), index.len(), "one model per training tuple");
        assert_eq!(chosen_ell.len(), index.len(), "one ℓ per training tuple");
        Self {
            index,
            models,
            chosen_ell,
            k: k.max(1),
            weighting,
        }
    }
}

impl AttrPredictor for IimModel {
    fn predict(&self, x: &[f64]) -> f64 {
        self.impute(x)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// IIM as a pluggable per-attribute estimator.
///
/// ```
/// use iim_core::{Iim, IimConfig};
/// use iim_data::{Imputer, PerAttributeImputer};
///
/// let (rel, tx) = iim_data::paper_fig1();
/// let iim = PerAttributeImputer::new(Iim::new(IimConfig { k: 3, ..Default::default() }));
/// // Offline phase once, then serve tx (and any other query) online.
/// let fitted = iim.fit(&rel).unwrap();
/// let served = fitted.impute_one(&tx).unwrap();
/// assert!(served[1].is_finite());
/// ```
pub struct Iim {
    cfg: IimConfig,
}

impl Iim {
    /// IIM with the given configuration.
    pub fn new(cfg: IimConfig) -> Self {
        Self { cfg }
    }

    /// Paper-default IIM: adaptive learning, mutual-vote aggregation.
    pub fn paper_default() -> Self {
        Self::new(IimConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &IimConfig {
        &self.cfg
    }
}

impl AttrEstimator for Iim {
    fn name(&self) -> &str {
        "IIM"
    }

    fn fit(&self, task: &AttrTask<'_>) -> Result<Box<dyn AttrPredictor>, ImputeError> {
        Ok(Box::new(IimModel::learn(task, &self.cfg)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::{paper_fig1, Imputer, PerAttributeImputer};

    #[test]
    fn fig1_fixed_ell_matches_example_3() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig::fixed(4, 3);
        let model = IimModel::learn(&task, &cfg).unwrap();
        let v = model.impute(&[5.0]);
        // 1.152 exact; the paper's rounded models give 1.194 (see
        // impute::tests::paper_example_3_end_to_end).
        assert!((v - 1.152).abs() < 0.005, "imputed {v}");
        assert!((v - 1.194).abs() < 0.05);
        assert_eq!(model.chosen_ell(), &[4; 8]);
        assert_eq!(model.n_train(), 8);
    }

    #[test]
    fn fig1_adaptive_beats_knn_and_glr() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k: 3,
            ..IimConfig::default()
        };
        let model = IimModel::learn(&task, &cfg).unwrap();
        let iim_v = model.impute(&[5.0]);
        let truth = 1.8;

        // kNN (value mean of t4,t5,t6): (3.2 + 3.0 + 4.1)/3 = 3.43.
        let knn_v: f64 = (3.2 + 3.0 + 4.1) / 3.0;
        // GLR prediction at 5.0.
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![rel.value(i, 0)]).collect();
        let glr = iim_linalg::ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).unwrap();
        let glr_v = glr.predict(&[5.0]);

        assert!(
            (iim_v - truth).abs() < (knn_v - truth).abs(),
            "IIM {iim_v} vs kNN {knn_v}"
        );
        assert!(
            (iim_v - truth).abs() < (glr_v - truth).abs(),
            "IIM {iim_v} vs GLR {glr_v}"
        );
    }

    #[test]
    fn driver_integration() {
        let (mut rel, tx) = paper_fig1();
        rel.push_row_opt(&tx);
        let iim = PerAttributeImputer::new(Iim::new(IimConfig {
            k: 3,
            ..Default::default()
        }));
        assert_eq!(iim.name(), "IIM");
        let filled = iim.impute(&rel).unwrap();
        assert_eq!(filled.missing_count(), 0);
        let v = filled.get(8, 1).unwrap();
        assert!((v - 1.8).abs() < 0.7, "imputed {v}");
    }

    #[test]
    fn empty_training_is_error() {
        let mut rel = iim_data::Relation::with_capacity(iim_data::Schema::anonymous(2), 1);
        rel.push_row_opt(&[Some(1.0), None]);
        let task = AttrTask::new(&rel, vec![0], 1);
        assert!(matches!(
            IimModel::learn(&task, &IimConfig::default()),
            Err(ImputeError::NoTrainingData { target: 1 })
        ));
    }

    #[test]
    fn index_choice_never_changes_the_imputation() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let build = |index| {
            IimModel::learn(
                &task,
                &IimConfig {
                    k: 3,
                    index,
                    ..IimConfig::default()
                },
            )
            .unwrap()
        };
        let brute = build(crate::IndexChoice::Brute);
        let kd = build(crate::IndexChoice::KdTree);
        assert_eq!(brute.index().kind(), "brute");
        assert_eq!(kd.index().kind(), "kdtree");
        assert_eq!(brute.chosen_ell(), kd.chosen_ell());
        let mut scratch = crate::ImputeScratch::new();
        for q in [0.0, 2.5, 5.0, 7.7] {
            let a = brute.impute(&[q]);
            let b = kd.impute(&[q]);
            assert_eq!(a.to_bits(), b.to_bits(), "q={q}");
            // Scratch-managed serving is the same function.
            assert_eq!(kd.impute_with(&[q], &mut scratch).to_bits(), a.to_bits());
        }
        // Tiny n: auto stays brute.
        assert_eq!(build(crate::IndexChoice::Auto).index().kind(), "brute");
    }

    #[test]
    fn k_clamps_to_training_size() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k: 100,
            ..IimConfig::default()
        };
        let model = IimModel::learn(&task, &cfg).unwrap();
        let v = model.impute(&[5.0]);
        assert!(v.is_finite());
    }
}
