//! The IIM front end: a two-phase model ([`IimModel`]) and the
//! [`AttrEstimator`] adapter ([`Iim`]) that plugs IIM into the shared
//! per-attribute driver next to every baseline.

use crate::adaptive::adaptive_learn;
use crate::config::{IimConfig, Learning, Weighting};
use crate::impute::{impute_with_scratch, ImputeScratch};
use crate::learn::learn_fixed;
use iim_bytes::{FloatSlice, U32Slice};
use iim_data::{AttrEstimator, AttrPredictor, AttrTask, ImputeError};
use iim_linalg::{GramAccumulator, LuFactors, Matrix, RidgeModel, EPS};
use iim_neighbors::{brute::FeatureMatrix, KnnScratch, NeighborIndex, NeighborOrders};
use std::cell::Cell;
use std::collections::HashMap;

/// Per-cell tolerance of IIM's absorb-vs-refit equivalence contract.
///
/// [`IimModel::absorb`] folds a new training tuple into the fitted state
/// with Sherman–Morrison rank-1 updates instead of relearning every
/// individual model. Unlike the Mean/GLR baselines (whose absorbs are
/// bitwise-equal to a refit), the IIM equivalence is approximate: the
/// rank-1 path *adds* the new tuple to the learning sets of its k nearest
/// neighbors, whereas a from-scratch refit would also re-select those sets
/// (dropping each set's previous farthest member) and, under adaptive
/// learning, re-choose ℓ per tuple.
///
/// The streaming property tests (`tests/streaming.rs`) and the serving
/// equivalence checks assert, per imputed cell,
/// `|absorbed − refit| ≤ IIM_ABSORB_TOLERANCE · max(1, |refit|)` on
/// workloads with the correlated, locally linear structure IIM targets
/// (the paper's premise): there, every candidate learning set recovers
/// nearly the same regression, so set-membership drift moves fills very
/// little. On adversarial geometry (near-duplicate points, pure noise)
/// the refit's re-selected learning sets can produce genuinely different
/// models, and no uniform per-cell bound exists.
pub const IIM_ABSORB_TOLERANCE: f64 = 0.25;

/// The maintained inverse normal-equation system of one individual model:
/// `a_inv = (XᵀX + shift·E)⁻¹` over the tuple's learning rows (augmented
/// with the constant column) and `v = XᵀY`, so a rank-1 Sherman–Morrison
/// step per absorbed row keeps `φ = a_inv · v` current in O(m²).
struct SmState {
    a_inv: Matrix,
    v: Vec<f64>,
}

/// Inverts `u + shift·E` under the same escalating-shift policy as
/// `solve_spd_regularized` (shift sequence `α, 10α, …` capped at `1e6`
/// relative to the mean diagonal). Returns `None` only for non-finite
/// input — the same condition under which the batch learner fails.
fn regularized_inverse(u: &Matrix, alpha0: f64) -> Option<Matrix> {
    let n = u.rows();
    let mean_diag = (0..n).map(|i| u[(i, i)].abs()).sum::<f64>().max(EPS) / n as f64;
    let mut shift = alpha0.max(0.0);
    for _ in 0..40 {
        let mut shifted = u.clone();
        if shift > 0.0 {
            shifted.add_diag(shift);
        }
        if let Some(lu) = LuFactors::new(&shifted) {
            let inv = lu.inverse();
            if inv.is_finite() {
                return Some(inv);
            }
        }
        shift = if shift == 0.0 {
            EPS * mean_diag
        } else {
            shift * 10.0
        };
        if shift > 1e6 * mean_diag {
            break;
        }
    }
    None
}

/// One Sherman–Morrison rank-1 step: absorbs the augmented observation
/// `(u_aug, y)` into the maintained inverse and `V` vector. Returns
/// `false` (leaving the state untouched) when the update is numerically
/// unusable, which for an SPD system requires non-finite input.
fn sherman_morrison_update(st: &mut SmState, u_aug: &[f64], y: f64) -> bool {
    let au = st.a_inv.matvec(u_aug);
    let denom = 1.0 + u_aug.iter().zip(&au).map(|(a, b)| a * b).sum::<f64>();
    if !denom.is_finite() || denom.abs() < EPS {
        return false;
    }
    let m = au.len();
    for i in 0..m {
        for j in 0..m {
            st.a_inv[(i, j)] -= au[i] * au[j] / denom;
        }
    }
    for (vi, ui) in st.v.iter_mut().zip(u_aug) {
        *vi += y * ui;
    }
    true
}

/// A learned IIM model for one incomplete attribute: the offline phase's
/// output (`Φ` plus the training tuples behind a stored
/// [`NeighborIndex`]), ready to impute any number of queries online.
///
/// This is the canonical fitted form behind the workspace's fit/serve
/// protocol: `PerAttributeImputer::<Iim>::fit` returns a
/// [`FittedImputer`](iim_data::FittedImputer) holding one `IimModel` per
/// target attribute (each plugged in through its [`AttrPredictor`] impl).
///
/// Serving is zero-allocation at steady state: `impute` searches the
/// index with per-thread scratch ([`ImputeScratch`]), so batch drivers
/// fanning queries across workers each reuse their own buffers. Which
/// index variant was built ([`IimConfig::index`]) never changes an
/// imputation — only its latency.
pub struct IimModel {
    index: NeighborIndex,
    models: Vec<RidgeModel>,
    chosen_ell: U32Slice,
    ys: FloatSlice,
    alpha: f64,
    k: usize,
    weighting: Weighting,
    absorbed: usize,
    /// Lazily built Sherman–Morrison systems, keyed by tuple position.
    /// Never persisted: delta-snapshot replay re-absorbs the same rows in
    /// the same order, rebuilding identical states (absorb is a pure
    /// function of the fitted state and the absorb sequence).
    sm: HashMap<u32, SmState>,
}

thread_local! {
    /// Per-thread serving scratch (see [`iim_exec::with_tls_scratch`] for
    /// the take/put contract).
    static SCRATCH: Cell<ImputeScratch> = Cell::new(ImputeScratch::new());
}

/// Runs `f` with this thread's serving scratch — shared by
/// [`IimModel::impute`] and the multiple-imputation view so every
/// single-query entry point is allocation-free at steady state.
pub(crate) fn with_serving_scratch<R>(f: impl FnOnce(&mut ImputeScratch) -> R) -> R {
    iim_exec::with_tls_scratch(&SCRATCH, f)
}

impl IimModel {
    /// Offline phase: learns the individual models of all training tuples
    /// of `task` (Algorithm 1 for [`Learning::Fixed`], Algorithm 3 for
    /// [`Learning::Adaptive`]).
    pub fn learn(task: &AttrTask<'_>, cfg: &IimConfig) -> Result<Self, ImputeError> {
        if task.n_train() == 0 {
            return Err(ImputeError::NoTrainingData {
                target: task.target,
            });
        }
        let fm = FeatureMatrix::gather(task.rel, &task.features, &task.train_rows);
        let ys: Vec<f64> = task
            .train_rows
            .iter()
            .map(|&r| task.target_value(r as usize))
            .collect();
        Ok(Self::learn_from_parts(fm, &ys, cfg))
    }

    /// [`IimModel::learn`] over pre-gathered parts (used by benches that
    /// need to time the phases in isolation).
    ///
    /// Builds the serving [`NeighborIndex`] first ([`IimConfig::index`])
    /// and routes the offline neighbor-order construction through it, so
    /// one index serves both phases.
    pub fn learn_from_parts(fm: FeatureMatrix, ys: &[f64], cfg: &IimConfig) -> Self {
        let n = fm.len();
        let threads = cfg.effective_threads();
        let pool = iim_exec::Pool::new(threads);
        let index = NeighborIndex::build(fm, cfg.index);
        let fm = index.matrix();
        let (models, chosen_ell) = match &cfg.learning {
            Learning::Fixed { ell } => {
                let ell = (*ell).clamp(1, n);
                let orders = NeighborOrders::build_from_index(&pool, &index, ell);
                let models = learn_fixed(fm, ys, &orders, ell, cfg.alpha, threads);
                (models, vec![ell as u32; n])
            }
            Learning::Adaptive(acfg) => {
                let vk_hint = acfg.validation_k.unwrap_or(cfg.k);
                let depth = acfg.ell_max.map_or(n, |e| e.min(n)).max(vk_hint.min(n)); // orders must also serve validation kNN
                let orders = NeighborOrders::build_from_index(&pool, &index, depth.max(1));
                let vk = acfg.validation_k.unwrap_or(cfg.k).max(1);
                let out = adaptive_learn(fm, ys, &orders, vk, acfg, cfg.alpha, threads);
                (out.models, out.chosen_ell)
            }
        };
        Self {
            index,
            models,
            chosen_ell: chosen_ell.into(),
            ys: ys.to_vec().into(),
            alpha: cfg.alpha,
            k: cfg.k.max(1),
            weighting: cfg.weighting,
            absorbed: 0,
            sm: HashMap::new(),
        }
    }

    /// Online phase (Algorithm 2): imputes one query from its feature
    /// vector (in the task's feature order).
    ///
    /// Serves through the stored index with per-thread scratch — no
    /// allocation at steady state. Use [`IimModel::impute_with`] to manage
    /// the scratch explicitly (e.g. one per worker in a custom batch
    /// loop).
    pub fn impute(&self, query: &[f64]) -> f64 {
        with_serving_scratch(|scratch| self.impute_with(query, scratch))
    }

    /// [`IimModel::impute`] with caller-owned scratch. Bit-identical to
    /// `impute` whatever state `scratch` arrives in.
    pub fn impute_with(&self, query: &[f64], scratch: &mut ImputeScratch) -> f64 {
        impute_with_scratch(
            &self.index,
            &self.models,
            query,
            self.k,
            self.weighting,
            scratch,
        )
        .expect("training set is non-empty")
    }

    /// The per-tuple ℓ actually used (constant under fixed learning).
    pub fn chosen_ell(&self) -> &[u32] {
        &self.chosen_ell
    }

    /// The individual regression parameters Φ, indexed like the training
    /// tuples.
    pub fn models(&self) -> &[RidgeModel] {
        &self.models
    }

    /// Number of training tuples.
    pub fn n_train(&self) -> usize {
        self.index.len()
    }

    /// The stored neighbor-search index (`"brute"` or `"kdtree"` via
    /// [`NeighborIndex::kind`]).
    pub fn index(&self) -> &NeighborIndex {
        &self.index
    }

    /// The gathered training features.
    pub fn feature_matrix(&self) -> &FeatureMatrix {
        self.index.matrix()
    }

    /// The imputation neighbor count `k` (Algorithm 2).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The candidate-aggregation policy.
    pub fn weighting(&self) -> Weighting {
        self.weighting
    }

    /// Reassembles a learned model from its parts (the snapshot decode
    /// path): the serving index, one ridge model per training tuple, the
    /// per-tuple ℓ actually chosen, the training targets, the ridge α,
    /// and the serving configuration. Panics when `models`/`chosen_ell`/
    /// `ys` do not line up with the index.
    pub fn from_parts(
        index: NeighborIndex,
        models: Vec<RidgeModel>,
        chosen_ell: impl Into<U32Slice>,
        ys: impl Into<FloatSlice>,
        alpha: f64,
        k: usize,
        weighting: Weighting,
    ) -> Self {
        let (chosen_ell, ys) = (chosen_ell.into(), ys.into());
        assert_eq!(models.len(), index.len(), "one model per training tuple");
        assert_eq!(chosen_ell.len(), index.len(), "one ℓ per training tuple");
        assert_eq!(ys.len(), index.len(), "one target per training tuple");
        Self {
            index,
            models,
            chosen_ell,
            ys,
            alpha,
            k: k.max(1),
            weighting,
            absorbed: 0,
            sm: HashMap::new(),
        }
    }

    /// The training targets, indexed like the training tuples (base rows
    /// first, absorbed rows appended in absorb order).
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The ridge regularization α the models were learned (and are
    /// incrementally updated) with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of tuples folded in through [`IimModel::absorb`] since the
    /// model was learned or reassembled.
    pub fn absorbed(&self) -> usize {
        self.absorbed
    }

    /// Incremental learning: folds one new training tuple `(x, y)` into
    /// the fitted state without relearning Φ.
    ///
    /// The update, in order:
    ///
    /// 1. finds the k imputation neighbors of `x` among the current
    ///    training tuples;
    /// 2. adds `(x, y)` to each neighbor's learning rows via a
    ///    Sherman–Morrison rank-1 update of its maintained inverse
    ///    normal-equation system (O(m²) per neighbor after a one-time
    ///    O(ℓm² + m³) reconstruction on first touch), refreshing the
    ///    neighbor's φ;
    /// 3. learns an individual model for the new tuple itself (ℓ
    ///    inherited from its nearest neighbor: the constant model at
    ///    ℓ = 1, otherwise ridge over itself plus its ℓ−1 nearest
    ///    neighbors);
    /// 4. appends `x` to the serving index ([`NeighborIndex::push`]:
    ///    exact for brute, pending-buffer + deterministic periodic
    ///    rebuild for the KD-tree).
    ///
    /// The result is a pure function of the fitted state and the absorb
    /// sequence — bit-stable across index variants and worker counts —
    /// and approximates a from-scratch refit on the grown training set
    /// within [`IIM_ABSORB_TOLERANCE`] per imputed cell (see the constant
    /// for why the equivalence is approximate rather than bitwise).
    pub fn absorb(&mut self, x: &[f64], y: f64) -> Result<(), ImputeError> {
        let n_features = self.index.matrix().n_features();
        if x.len() != n_features {
            return Err(ImputeError::ArityMismatch {
                expected: n_features,
                got: x.len(),
            });
        }
        if !y.is_finite() || x.iter().any(|v| !v.is_finite()) {
            return Err(ImputeError::Unsupported(
                "absorb requires a complete (finite) tuple".into(),
            ));
        }
        let n = self.index.len();
        debug_assert!(n > 0, "fitted models always hold at least one tuple");

        // (1) Imputation neighbors of the new point in the current index.
        let mut scratch = KnnScratch::default();
        let mut neighbors = Vec::new();
        self.index.knn_with(x, self.k, &mut scratch, &mut neighbors);

        // (2) Rank-1 update of each neighbor's individual model.
        let mut u_aug = Vec::with_capacity(n_features + 1);
        u_aug.push(1.0);
        u_aug.extend_from_slice(x);
        for nb in &neighbors {
            let pos = nb.pos;
            if !self.sm.contains_key(&pos) {
                let ell = (self.chosen_ell[pos as usize] as usize).max(1);
                match build_sm_state(&self.index, &self.ys, self.alpha, pos, ell) {
                    Some(st) => {
                        self.sm.insert(pos, st);
                    }
                    // Unsolvable reconstruction requires non-finite stored
                    // data; keep serving the frozen batch model.
                    None => continue,
                }
            }
            let st = self.sm.get_mut(&pos).expect("state inserted above");
            if sherman_morrison_update(st, &u_aug, y) {
                self.models[pos as usize] = RidgeModel {
                    phi: st.a_inv.matvec(&st.v).into(),
                };
            }
        }

        // (3) The new tuple's own individual model, ℓ inherited from its
        // nearest neighbor (positions are unique, so `neighbors[0]` is
        // deterministic).
        let ell_new = (self.chosen_ell[neighbors[0].pos as usize] as usize).max(1);
        let own = if ell_new <= 1 {
            RidgeModel::constant(y, n_features)
        } else {
            let mut own_nbs = Vec::new();
            self.index
                .knn_with(x, ell_new - 1, &mut scratch, &mut own_nbs);
            // A tuple is its own nearest learning neighbor: accumulate it
            // first, then the existing rows in neighbor order.
            let mut acc = GramAccumulator::new(n_features);
            acc.add_row(x, y);
            let fm = self.index.matrix();
            for nb in &own_nbs {
                acc.add_row(fm.point(nb.pos as usize), self.ys[nb.pos as usize]);
            }
            match acc.solve(self.alpha) {
                Some(model) => model,
                None => RidgeModel::constant(y, n_features),
            }
        };

        // (4) Append to the serving state (copy-on-write: a view-backed
        // model becomes owned on first absorb).
        self.index.push(x, n as u32);
        self.ys.to_mut().push(y);
        self.models.push(own);
        self.chosen_ell.to_mut().push(ell_new as u32);
        self.absorbed += 1;
        Ok(())
    }
}

/// Reconstructs the Sherman–Morrison system of tuple `pos` from the
/// current index: the Gram pair over its `ell` nearest neighbors (the
/// same rows `learn_one` would regress over today) and the inverse of the
/// regularized Gram matrix.
fn build_sm_state(
    index: &NeighborIndex,
    ys: &[f64],
    alpha: f64,
    pos: u32,
    ell: usize,
) -> Option<SmState> {
    let fm = index.matrix();
    let mut scratch = KnnScratch::default();
    let mut neighbors = Vec::new();
    index.knn_with(fm.point(pos as usize), ell, &mut scratch, &mut neighbors);
    let mut acc = GramAccumulator::new(fm.n_features());
    for nb in &neighbors {
        acc.add_row(fm.point(nb.pos as usize), ys[nb.pos as usize]);
    }
    let a_inv = regularized_inverse(acc.u(), alpha)?;
    Some(SmState {
        a_inv,
        v: acc.v().to_vec(),
    })
}

impl AttrPredictor for IimModel {
    fn predict(&self, x: &[f64]) -> f64 {
        self.impute(x)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn absorb(&mut self, x: &[f64], y: f64) -> Result<(), ImputeError> {
        IimModel::absorb(self, x, y)
    }

    fn can_absorb(&self) -> bool {
        true
    }
}

/// IIM as a pluggable per-attribute estimator.
///
/// ```
/// use iim_core::{Iim, IimConfig};
/// use iim_data::{Imputer, PerAttributeImputer};
///
/// let (rel, tx) = iim_data::paper_fig1();
/// let iim = PerAttributeImputer::new(Iim::new(IimConfig { k: 3, ..Default::default() }));
/// // Offline phase once, then serve tx (and any other query) online.
/// let fitted = iim.fit(&rel).unwrap();
/// let served = fitted.impute_one(&tx).unwrap();
/// assert!(served[1].is_finite());
/// ```
pub struct Iim {
    cfg: IimConfig,
}

impl Iim {
    /// IIM with the given configuration.
    pub fn new(cfg: IimConfig) -> Self {
        Self { cfg }
    }

    /// Paper-default IIM: adaptive learning, mutual-vote aggregation.
    pub fn paper_default() -> Self {
        Self::new(IimConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &IimConfig {
        &self.cfg
    }
}

impl AttrEstimator for Iim {
    fn name(&self) -> &str {
        "IIM"
    }

    fn fit(&self, task: &AttrTask<'_>) -> Result<Box<dyn AttrPredictor>, ImputeError> {
        Ok(Box::new(IimModel::learn(task, &self.cfg)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::{paper_fig1, Imputer, PerAttributeImputer};

    #[test]
    fn fig1_fixed_ell_matches_example_3() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig::fixed(4, 3);
        let model = IimModel::learn(&task, &cfg).unwrap();
        let v = model.impute(&[5.0]);
        // 1.152 exact; the paper's rounded models give 1.194 (see
        // impute::tests::paper_example_3_end_to_end).
        assert!((v - 1.152).abs() < 0.005, "imputed {v}");
        assert!((v - 1.194).abs() < 0.05);
        assert_eq!(model.chosen_ell(), &[4; 8]);
        assert_eq!(model.n_train(), 8);
    }

    #[test]
    fn fig1_adaptive_beats_knn_and_glr() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k: 3,
            ..IimConfig::default()
        };
        let model = IimModel::learn(&task, &cfg).unwrap();
        let iim_v = model.impute(&[5.0]);
        let truth = 1.8;

        // kNN (value mean of t4,t5,t6): (3.2 + 3.0 + 4.1)/3 = 3.43.
        let knn_v: f64 = (3.2 + 3.0 + 4.1) / 3.0;
        // GLR prediction at 5.0.
        let ys: Vec<f64> = (0..8).map(|i| rel.value(i, 1)).collect();
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![rel.value(i, 0)]).collect();
        let glr = iim_linalg::ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).unwrap();
        let glr_v = glr.predict(&[5.0]);

        assert!(
            (iim_v - truth).abs() < (knn_v - truth).abs(),
            "IIM {iim_v} vs kNN {knn_v}"
        );
        assert!(
            (iim_v - truth).abs() < (glr_v - truth).abs(),
            "IIM {iim_v} vs GLR {glr_v}"
        );
    }

    #[test]
    fn driver_integration() {
        let (mut rel, tx) = paper_fig1();
        rel.push_row_opt(&tx);
        let iim = PerAttributeImputer::new(Iim::new(IimConfig {
            k: 3,
            ..Default::default()
        }));
        assert_eq!(iim.name(), "IIM");
        let filled = iim.impute(&rel).unwrap();
        assert_eq!(filled.missing_count(), 0);
        let v = filled.get(8, 1).unwrap();
        assert!((v - 1.8).abs() < 0.7, "imputed {v}");
    }

    #[test]
    fn empty_training_is_error() {
        let mut rel = iim_data::Relation::with_capacity(iim_data::Schema::anonymous(2), 1);
        rel.push_row_opt(&[Some(1.0), None]);
        let task = AttrTask::new(&rel, vec![0], 1);
        assert!(matches!(
            IimModel::learn(&task, &IimConfig::default()),
            Err(ImputeError::NoTrainingData { target: 1 })
        ));
    }

    #[test]
    fn index_choice_never_changes_the_imputation() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let build = |index| {
            IimModel::learn(
                &task,
                &IimConfig {
                    k: 3,
                    index,
                    ..IimConfig::default()
                },
            )
            .unwrap()
        };
        let brute = build(crate::IndexChoice::Brute);
        let kd = build(crate::IndexChoice::KdTree);
        let vp = build(crate::IndexChoice::VpTree);
        assert_eq!(brute.index().kind(), "brute");
        assert_eq!(kd.index().kind(), "kdtree");
        assert_eq!(vp.index().kind(), "vptree");
        assert_eq!(brute.chosen_ell(), kd.chosen_ell());
        assert_eq!(brute.chosen_ell(), vp.chosen_ell());
        let mut scratch = crate::ImputeScratch::new();
        for q in [0.0, 2.5, 5.0, 7.7] {
            let a = brute.impute(&[q]);
            let b = kd.impute(&[q]);
            assert_eq!(a.to_bits(), b.to_bits(), "q={q}");
            assert_eq!(vp.impute(&[q]).to_bits(), a.to_bits(), "q={q}");
            // Scratch-managed serving is the same function.
            assert_eq!(kd.impute_with(&[q], &mut scratch).to_bits(), a.to_bits());
        }
        // Tiny n: auto stays brute.
        assert_eq!(build(crate::IndexChoice::Auto).index().kind(), "brute");
    }

    #[test]
    fn absorb_appends_and_stays_deterministic() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let build = |index| {
            let cfg = IimConfig {
                index,
                ..IimConfig::fixed(4, 3)
            };
            let mut model = IimModel::learn(&task, &cfg).unwrap();
            model.absorb(&[4.6], 2.0).unwrap();
            model.absorb(&[0.4], 5.1).unwrap();
            model
        };
        let brute = build(crate::IndexChoice::Brute);
        let kd = build(crate::IndexChoice::KdTree);
        let vp = build(crate::IndexChoice::VpTree);
        assert_eq!(brute.n_train(), 10);
        assert_eq!(brute.absorbed(), 2);
        assert_eq!(brute.ys().len(), 10);
        assert_eq!(brute.chosen_ell().len(), 10);
        for q in [0.0, 2.5, 4.8, 5.0, 9.1] {
            assert_eq!(
                brute.impute(&[q]).to_bits(),
                kd.impute(&[q]).to_bits(),
                "q={q}"
            );
            assert_eq!(
                brute.impute(&[q]).to_bits(),
                vp.impute(&[q]).to_bits(),
                "q={q}"
            );
        }
    }

    #[test]
    fn absorb_tracks_refit_within_tolerance() {
        // Absorb a stream of on-trend tuples one at a time; imputations of
        // the grown model must stay within the committed tolerance of a
        // from-scratch refit on the same grown training set.
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig::fixed(4, 3);
        let mut model = IimModel::learn(&task, &cfg).unwrap();
        let stream = [(4.6, 2.0), (5.4, 1.5), (0.4, 5.1), (9.5, 2.6)];
        let mut grown = rel.clone();
        for &(x, y) in &stream {
            model.absorb(&[x], y).unwrap();
            grown.push_row_opt(&[Some(x), Some(y)]);
        }
        let refit = IimModel::learn(&AttrTask::new(&grown, vec![0], 1), &cfg).unwrap();
        for q in [0.5, 2.5, 5.0, 7.7, 9.0] {
            let a = model.impute(&[q]);
            let b = refit.impute(&[q]);
            assert!(
                (a - b).abs() <= crate::IIM_ABSORB_TOLERANCE * b.abs().max(1.0),
                "q={q}: absorbed {a} vs refit {b}"
            );
        }
    }

    #[test]
    fn absorb_rejects_bad_input() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let mut model = IimModel::learn(&task, &IimConfig::fixed(4, 3)).unwrap();
        assert!(matches!(
            model.absorb(&[1.0, 2.0], 3.0),
            Err(ImputeError::ArityMismatch {
                expected: 1,
                got: 2
            })
        ));
        assert!(matches!(
            model.absorb(&[f64::NAN], 3.0),
            Err(ImputeError::Unsupported(_))
        ));
        assert!(matches!(
            model.absorb(&[1.0], f64::INFINITY),
            Err(ImputeError::Unsupported(_))
        ));
        assert_eq!(model.absorbed(), 0);
        assert_eq!(model.n_train(), 8);
    }

    #[test]
    fn k_clamps_to_training_size() {
        let (rel, _) = paper_fig1();
        let task = AttrTask::new(&rel, vec![0], 1);
        let cfg = IimConfig {
            k: 100,
            ..IimConfig::default()
        };
        let model = IimModel::learn(&task, &cfg).unwrap();
        let v = model.impute(&[5.0]);
        assert!(v.is_finite());
    }
}
