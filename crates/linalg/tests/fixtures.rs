//! Hand-computed fixtures for the dense kernels: every expected value below
//! is derived on paper (or by elementary closed forms), so these tests pin
//! the kernels to ground truth rather than to their own output.

use iim_linalg::{
    cholesky, eigen_sym, ridge_fit, solve_spd, thin_svd, GramAccumulator, LuFactors, Matrix,
};

// ---------------------------------------------------------------- solve --

/// A = [[4, 2], [2, 3]]: L = [[2, 0], [1, sqrt(2)]] by hand.
#[test]
fn cholesky_2x2_hand_factor() {
    let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
    let l = cholesky(&a).expect("SPD");
    assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
    assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
    assert!((l[(1, 1)] - 2f64.sqrt()).abs() < 1e-12);
    assert!(l[(0, 1)].abs() < 1e-12, "upper triangle stays zero");
}

/// Same A: solving A x = [2, 5] gives x = [-1/2, 2] (Cramer by hand:
/// det = 8, x0 = (2·3 − 2·5)/8 = −1/2, x1 = (4·5 − 2·2)/8 = 2).
#[test]
fn solve_spd_2x2_hand_solution() {
    let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
    let x = solve_spd(&a, &[2.0, 5.0]).expect("SPD");
    assert!((x[0] + 0.5).abs() < 1e-12, "x0 {}", x[0]);
    assert!((x[1] - 2.0).abs() < 1e-12, "x1 {}", x[1]);
}

/// The 3x3 Hilbert-like system [[1, 1/2, 1/3], …] is ill-conditioned
/// (cond ≈ 524): the solver must still reproduce a known exact solution.
/// With b = A · [1, 1, 1]ᵀ computed in exact fractions, x = [1, 1, 1].
#[test]
fn solve_spd_hilbert3_ill_conditioned() {
    let a = Matrix::from_rows(&[
        &[1.0, 1.0 / 2.0, 1.0 / 3.0],
        &[1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0],
        &[1.0 / 3.0, 1.0 / 4.0, 1.0 / 5.0],
    ]);
    let b = [11.0 / 6.0, 13.0 / 12.0, 47.0 / 60.0];
    let x = solve_spd(&a, &b).expect("Hilbert 3x3 is SPD");
    for (i, xi) in x.iter().enumerate() {
        assert!((xi - 1.0).abs() < 1e-9, "x[{i}] = {xi}");
    }
}

/// LU on a singular matrix (row2 = 2·row1) must refuse, not return noise.
#[test]
fn lu_rejects_exactly_singular() {
    let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[1.0, 0.0, 1.0]]);
    assert!(LuFactors::new(&a).is_none());
}

/// det([[2, 1], [1, 2]]) = 3; det flips sign under a row swap, which LU
/// tracks through the permutation sign on [[0, 1], [1, 0]] (det = −1).
#[test]
fn lu_det_hand_values() {
    let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
    assert!((LuFactors::new(&a).unwrap().det() - 3.0).abs() < 1e-12);
    let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
    assert!((LuFactors::new(&p).unwrap().det() + 1.0).abs() < 1e-12);
}

// ---------------------------------------------------------------- eigen --

/// [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors
/// (1, 1)/√2 and (1, −1)/√2.
#[test]
fn eigen_2x2_hand_values() {
    let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
    let e = eigen_sym(&a);
    assert!((e.values[0] - 3.0).abs() < 1e-10);
    assert!((e.values[1] - 1.0).abs() < 1e-10);
    // First eigenvector ∝ (1, 1): components equal up to sign.
    let (v00, v10) = (e.vectors[(0, 0)], e.vectors[(1, 0)]);
    assert!((v00.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
    assert!((v00 - v10).abs() < 1e-10, "({v00}, {v10}) not along (1,1)");
}

/// A diagonal matrix is its own eigendecomposition; values come back sorted
/// descending regardless of input order.
#[test]
fn eigen_diagonal_sorted() {
    let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 5.0, 0.0], &[0.0, 0.0, 3.0]]);
    let e = eigen_sym(&a);
    assert!((e.values[0] - 5.0).abs() < 1e-12);
    assert!((e.values[1] - 3.0).abs() < 1e-12);
    assert!((e.values[2] - 1.0).abs() < 1e-12);
}

/// Rank-1 matrix vvᵀ for v = (3, 4): eigenvalues ‖v‖² = 25 and 0.
#[test]
fn eigen_rank_one_semidefinite() {
    let a = Matrix::from_rows(&[&[9.0, 12.0], &[12.0, 16.0]]);
    let e = eigen_sym(&a);
    assert!((e.values[0] - 25.0).abs() < 1e-10);
    assert!(e.values[1].abs() < 1e-10);
    // A V = V diag(λ) must still hold.
    let av = a.matmul(&e.vectors);
    for j in 0..2 {
        for i in 0..2 {
            assert!((av[(i, j)] - e.values[j] * e.vectors[(i, j)]).abs() < 1e-9);
        }
    }
}

// ------------------------------------------------------------------ svd --

/// diag(3, 2) stacked over a zero row: singular values 3, 2 exactly, and
/// A = U Σ Vᵀ reconstructs.
#[test]
fn svd_diagonal_hand_values() {
    let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
    let s = thin_svd(&a);
    assert_eq!(s.rank(), 2);
    assert!((s.sigma[0] - 3.0).abs() < 1e-10);
    assert!((s.sigma[1] - 2.0).abs() < 1e-10);
    assert!(s.reconstruct(2).max_abs_diff(&a) < 1e-9);
}

/// Rank-1 outer product (1, 2, 2)ᵀ(1, 1): the only singular value is
/// ‖(1,2,2)‖ · ‖(1,1)‖ = 3√2, and the rank-deficient direction is dropped.
#[test]
fn svd_rank_one_drops_null_direction() {
    let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[2.0, 2.0]]);
    let s = thin_svd(&a);
    assert_eq!(s.rank(), 1, "exactly one nonzero singular value");
    assert!(
        (s.sigma[0] - 3.0 * 2f64.sqrt()).abs() < 1e-9,
        "{}",
        s.sigma[0]
    );
    assert!(s.reconstruct(1).max_abs_diff(&a) < 1e-9);
}

/// Truncating the 2-singular-value fixture to k = 1 gives the best rank-1
/// approximation: error in Frobenius norm equals the dropped σ₂.
#[test]
fn svd_truncation_error_is_dropped_sigma() {
    let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]]);
    let s = thin_svd(&a);
    let err = s.reconstruct(1).sub(&a).frobenius_norm();
    assert!((err - 2.0).abs() < 1e-9, "‖A − A₁‖_F = {err}");
}

// ---------------------------------------------------------------- ridge --

/// Two points (0, 1), (1, 3) with α → 0: exact interpolation
/// φ = (1, 2).
#[test]
fn ridge_two_points_interpolates() {
    let xs = [[0.0], [1.0]];
    let ys = [1.0, 3.0];
    let m = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-12).expect("fit");
    assert!((m.phi[0] - 1.0).abs() < 1e-5);
    assert!((m.phi[1] - 2.0).abs() < 1e-5);
}

/// Symmetric x = (−1, 0, 1), y = (0, 1, 2): the intercept is ȳ = 1 and the
/// slope Σxy/Σx² = 1 for any small α (centered data decouples the system).
#[test]
fn ridge_centered_closed_form() {
    let xs = [[-1.0], [0.0], [1.0]];
    let ys = [0.0, 1.0, 2.0];
    let m = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-10).expect("fit");
    assert!((m.phi[0] - 1.0).abs() < 1e-6, "intercept {}", m.phi[0]);
    assert!((m.phi[1] - 1.0).abs() < 1e-6, "slope {}", m.phi[1]);
}

/// Duplicated feature (perfect collinearity) is singular for OLS; ridge
/// must return finite coefficients that still predict well, splitting the
/// weight between the two copies.
#[test]
fn ridge_collinear_features_stay_finite() {
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, i as f64]).collect();
    let ys: Vec<f64> = (0..8).map(|i| 4.0 * i as f64).collect();
    let m = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-6).expect("fit");
    assert!(m.is_finite());
    assert!((m.predict(&[5.0, 5.0]) - 20.0).abs() < 1e-3);
    // Symmetric problem ⇒ symmetric split of the total slope 4.
    assert!((m.phi[1] - m.phi[2]).abs() < 1e-6);
}

/// The Gram accumulator must agree with the batch fit after adds, and
/// `remove_row` must exactly undo an add (Proposition 3's bookkeeping).
#[test]
fn gram_accumulator_add_remove_roundtrip() {
    let xs = [[0.0], [1.0], [2.0], [3.0]];
    let ys = [1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
    let mut acc = GramAccumulator::new(1);
    for (x, &y) in xs.iter().zip(&ys) {
        acc.add_row(x, y);
    }
    let full = acc.solve(1e-10).expect("solve");
    assert!((full.phi[0] - 1.0).abs() < 1e-5);
    assert!((full.phi[1] - 2.0).abs() < 1e-5);

    // Remove the last row: must match the 3-point batch fit exactly.
    acc.remove_row(&xs[3], ys[3]);
    let reduced = acc.solve(1e-10).expect("solve");
    let batch = ridge_fit(xs[..3].iter().map(|v| v.as_slice()), &ys[..3], 1e-10).expect("fit");
    for (a, b) in reduced.phi.iter().zip(&batch.phi) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
