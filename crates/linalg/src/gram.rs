//! Incremental Gram-system maintenance (Proposition 3 of the IIM paper).
//!
//! The adaptive learning phase (Algorithm 3) must learn, for a tuple `tᵢ`,
//! the ridge parameters `φ⁽ℓ⁾` for *every* candidate neighbor count
//! `ℓ = 1, 1+h, 1+2h, …`. Because `NN(tᵢ, F, ℓ) ⊂ NN(tᵢ, F, ℓ+h)`
//! (Formula 13), the Gram pair
//! `U⁽ℓ⁺ʰ⁾ = U⁽ℓ⁾ + (X⁽ℓ,Δh⁾)ᵀ X⁽ℓ,Δh⁾` and
//! `V⁽ℓ⁺ʰ⁾ = V⁽ℓ⁾ + (X⁽ℓ,Δh⁾)ᵀ Y⁽ℓ,Δh⁾` (Formulas 20–21)
//! can absorb the `h` new neighbors in `O(m²h)` instead of rebuilding in
//! `O(m²ℓ)` — the paper's "linear to constant" reduction (Table III).

use crate::matrix::Matrix;
use crate::ridge::{accumulate_augmented, RidgeModel};
use crate::solve::solve_spd_regularized;

/// Accumulates `U = XᵀX` and `V = XᵀY` over an *augmented* design
/// (leading constant-1 column), supporting row insertion and removal.
///
/// `m` below is the augmented width: number of features + 1.
#[derive(Debug, Clone)]
pub struct GramAccumulator {
    u: Matrix,
    v: Vec<f64>,
    rows_absorbed: usize,
}

impl GramAccumulator {
    /// Empty accumulator for models with `n_features` non-constant features.
    pub fn new(n_features: usize) -> Self {
        let m = n_features + 1;
        Self {
            u: Matrix::zeros(m, m),
            v: vec![0.0; m],
            rows_absorbed: 0,
        }
    }

    /// Reassembles an accumulator from its raw state (the snapshot decode
    /// path; inverse of [`GramAccumulator::u`] / [`GramAccumulator::v`] /
    /// [`GramAccumulator::len`]). `u` must be square with `v.len()` rows.
    pub fn from_parts(u: Matrix, v: Vec<f64>, rows_absorbed: usize) -> Self {
        assert_eq!(u.rows(), u.cols(), "Gram matrix must be square");
        assert_eq!(u.rows(), v.len(), "one V entry per Gram row");
        Self {
            u,
            v,
            rows_absorbed,
        }
    }

    /// Absorbs one observation `(x, y)`; `x` excludes the constant column.
    /// Cost `O(m²)`.
    pub fn add_row(&mut self, x: &[f64], y: f64) {
        accumulate_augmented(&mut self.u, &mut self.v, x, y, 1.0);
        self.rows_absorbed += 1;
    }

    /// Removes a previously absorbed observation (downdate). Cost `O(m²)`.
    ///
    /// The caller is responsible for only removing rows that were added;
    /// removing anything else silently corrupts the system.
    pub fn remove_row(&mut self, x: &[f64], y: f64) {
        accumulate_augmented(&mut self.u, &mut self.v, x, y, -1.0);
        self.rows_absorbed = self.rows_absorbed.saturating_sub(1);
    }

    /// Number of observations currently absorbed.
    pub fn len(&self) -> usize {
        self.rows_absorbed
    }

    /// True when no observation has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.rows_absorbed == 0
    }

    /// Current `U` matrix (augmented Gram).
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// Current `V` vector.
    pub fn v(&self) -> &[f64] {
        &self.v
    }

    /// Solves `(U + αE) φ = V` (Formula 19). Cost `O(m³)`, independent of
    /// the number of absorbed rows.
    ///
    /// Returns `None` when the escalating regularized solve fails (requires
    /// non-finite data).
    pub fn solve(&self, alpha: f64) -> Option<RidgeModel> {
        let phi = solve_spd_regularized(&self.u, &self.v, alpha)?;
        Some(RidgeModel { phi: phi.into() })
    }

    /// Resets to the empty state, keeping the allocation.
    pub fn clear(&mut self) {
        self.u.as_mut_slice().fill(0.0);
        self.v.fill(0.0);
        self.rows_absorbed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ridge::ridge_fit;

    fn rows() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 * 0.7, (i as f64).sin() * 2.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 - 0.8 * x[0] + 0.3 * x[1]).collect();
        (xs, ys)
    }

    #[test]
    fn incremental_matches_batch() {
        let (xs, ys) = rows();
        let mut acc = GramAccumulator::new(2);
        for (x, &y) in xs.iter().zip(&ys) {
            acc.add_row(x, y);
        }
        let inc = acc.solve(1e-9).expect("solve");
        let batch = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).expect("fit");
        for (a, b) in inc.phi.iter().zip(&batch.phi) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn prefix_solves_match_per_step() {
        // Every prefix solve must equal the from-scratch fit on the same
        // prefix: this is exactly the invariant Proposition 3 relies on.
        let (xs, ys) = rows();
        let mut acc = GramAccumulator::new(2);
        for l in 0..xs.len() {
            acc.add_row(&xs[l], ys[l]);
            if l + 1 >= 2 {
                let inc = acc.solve(1e-9).expect("solve");
                let batch =
                    ridge_fit(xs[..=l].iter().map(|v| v.as_slice()), &ys[..=l], 1e-9).expect("fit");
                for (a, b) in inc.phi.iter().zip(&batch.phi) {
                    assert!((a - b).abs() < 1e-6, "prefix {l}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn paper_example_6_u_and_v() {
        // Example 6: t1's neighbors for l=3 are {t1,t2,t3} with
        // A1 = (0, 0.8, 1.9), A2 = (5.8, 4.6, 3.8); then t4 = (2.9, 3.2)
        // arrives. The increments must be [[1,2.9],[2.9,8.41]] and
        // [3.2, 9.28], and φ moves from ~(5.66,-1.03) to ~(5.56,-0.87).
        let mut acc = GramAccumulator::new(1);
        acc.add_row(&[0.0], 5.8);
        acc.add_row(&[0.8], 4.6);
        acc.add_row(&[1.9], 3.8);
        let phi3 = acc.solve(1e-9).expect("solve").phi;
        assert!((phi3[0] - 5.66).abs() < 0.01, "phi3[0]={}", phi3[0]);
        assert!((phi3[1] + 1.03).abs() < 0.01, "phi3[1]={}", phi3[1]);

        let u3 = acc.u().clone();
        let v3 = acc.v().to_vec();
        acc.add_row(&[2.9], 3.2);
        let du00 = acc.u()[(0, 0)] - u3[(0, 0)];
        let du01 = acc.u()[(0, 1)] - u3[(0, 1)];
        let du11 = acc.u()[(1, 1)] - u3[(1, 1)];
        assert!((du00 - 1.0).abs() < 1e-12);
        assert!((du01 - 2.9).abs() < 1e-12);
        assert!((du11 - 8.41).abs() < 1e-12);
        assert!((acc.v()[0] - v3[0] - 3.2).abs() < 1e-12);
        assert!((acc.v()[1] - v3[1] - 9.28).abs() < 1e-12);

        let phi4 = acc.solve(1e-9).expect("solve").phi;
        assert!((phi4[0] - 5.56).abs() < 0.01, "phi4[0]={}", phi4[0]);
        assert!((phi4[1] + 0.87).abs() < 0.01, "phi4[1]={}", phi4[1]);
    }

    #[test]
    fn remove_row_restores_state() {
        let (xs, ys) = rows();
        let mut acc = GramAccumulator::new(2);
        for (x, &y) in xs.iter().take(5).zip(&ys) {
            acc.add_row(x, y);
        }
        let before = acc.solve(1e-9).unwrap().phi;
        acc.add_row(&xs[7], ys[7]);
        acc.remove_row(&xs[7], ys[7]);
        let after = acc.solve(1e-9).unwrap().phi;
        for (a, b) in before.iter().zip(&after) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(acc.len(), 5);
    }

    #[test]
    fn clear_resets() {
        let mut acc = GramAccumulator::new(1);
        acc.add_row(&[1.0], 2.0);
        assert!(!acc.is_empty());
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.u()[(0, 0)], 0.0);
        assert_eq!(acc.v()[0], 0.0);
    }
}
