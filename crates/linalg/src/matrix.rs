//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// Sized for the IIM workload: `m x m` Gram matrices and `l x m` design
/// matrices where `m` is a relation's attribute count (small) and `l` a
/// neighbor count. Storage is a single `Vec<f64>` so row slices are
/// contiguous and cheap to hand to kernels.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must match shape");
        Self { rows, cols, data }
    }

    /// Build from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Panics if the inner dimensions disagree. Uses the classic i-k-j loop
    /// order so the innermost accesses stream along contiguous rows.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for j in 0..rhs.cols {
                    orow[j] += a * rrow[j];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "vector length must equal cols");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            out[i] = dot(self.row(i), v);
        }
        out
    }

    /// Gram matrix `selfᵀ * self` (symmetric, `cols x cols`).
    ///
    /// Exploits symmetry: only the upper triangle is computed, then mirrored.
    pub fn gram(&self) -> Matrix {
        let m = self.cols;
        let mut g = Matrix::zeros(m, m);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..m {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                let grow = g.row_mut(i);
                for j in i..m {
                    grow[j] += xi * row[j];
                }
            }
        }
        for i in 0..m {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `selfᵀ * y` for a response vector `y` with one entry per row.
    pub fn xty(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, y.len(), "response length must equal rows");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for j in 0..self.cols {
                out[j] += row[j] * yr;
            }
        }
        out
    }

    /// Elementwise `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scaled copy `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `alpha` to every diagonal entry in place (ridge shift `+ αE`).
    pub fn add_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute elementwise difference to `rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.25], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = vec![0.5, -1.0];
        let got = a.matvec(&v);
        assert!(approx(got[0], -1.5));
        assert!(approx(got[1], -2.5));
    }

    #[test]
    fn gram_equals_explicit_product() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = x.gram();
        let explicit = x.transpose().matmul(&x);
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn xty_matches_explicit() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = vec![1.0, -1.0, 2.0];
        let v = x.xty(&y);
        assert!(approx(v[0], 1.0 - 3.0 + 10.0));
        assert!(approx(v[1], 2.0 - 4.0 + 12.0));
    }

    #[test]
    fn add_sub_scale_diag() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        assert_eq!(a.add(&b)[(0, 0)], 2.0);
        assert_eq!(a.sub(&b)[(1, 1)], 3.0);
        assert_eq!(a.scale(2.0)[(1, 0)], 6.0);
        let mut c = a.clone();
        c.add_diag(0.5);
        assert_eq!(c[(0, 0)], 1.5);
        assert_eq!(c[(0, 1)], 2.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!(approx(a.frobenius_norm(), 5.0));
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }
}
