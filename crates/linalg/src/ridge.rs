//! Ridge regression (Formula 5 of the IIM paper):
//! `φ = (XᵀX + αE)⁻¹ Xᵀ Y`
//! where `X` is the design matrix with a leading constant-1 column and `E`
//! the identity (the paper regularizes the intercept too; the worked
//! examples are consistent with α ≈ 0, so the workspace default is a tiny
//! numerical guard — see `iim-core`).

use crate::matrix::dot;
use crate::solve::solve_spd_regularized;
use crate::Matrix;
use iim_bytes::FloatSlice;

/// A fitted linear model `y ≈ φ\[0\] + φ\[1\] x₁ + … + φ[m-1] x_{m-1}`.
///
/// `phi` is laid out exactly like the paper's
/// `φ = {φ[C], φ[A1], …, φ[A_{m-1}]}ᵀ`. It is a [`FloatSlice`] so a
/// snapshot loaded through the validate-then-view path can borrow the
/// coefficients straight out of the shared snapshot buffer; freshly
/// fitted models own their coefficients as before (`FloatSlice` derefs
/// to `[f64]`, so call sites are unchanged).
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeModel {
    /// `[intercept, coef₁, …]`.
    pub phi: FloatSlice,
}

impl RidgeModel {
    /// A constant model `y = c` (the paper's ℓ = 1 special case, §III-A2).
    pub fn constant(c: f64, n_features: usize) -> Self {
        let mut phi = vec![0.0; n_features + 1];
        phi[0] = c;
        Self { phi: phi.into() }
    }

    /// Predicts `(1, x) · φ` for a feature vector `x` (without the leading 1).
    #[inline]
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len() + 1, self.phi.len());
        self.phi[0] + dot(&self.phi[1..], x)
    }

    /// Number of (non-intercept) features the model expects.
    pub fn n_features(&self) -> usize {
        self.phi.len() - 1
    }

    /// True when every coefficient is finite.
    pub fn is_finite(&self) -> bool {
        self.phi.iter().all(|v| v.is_finite())
    }
}

/// Fits ridge regression over `(rows[i], ys[i])` pairs.
///
/// `rows` are feature vectors *without* the constant column; the intercept
/// is handled internally by augmenting the Gram system. Returns `None` only
/// when the (escalating) regularized solve fails, which requires non-finite
/// input.
pub fn ridge_fit<'a, I>(rows: I, ys: &[f64], alpha: f64) -> Option<RidgeModel>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    ridge_fit_weighted(rows, ys, None, alpha)
}

/// Weighted ridge: minimizes `Σ wᵢ (yᵢ - (1,xᵢ)φ)² + α‖φ‖²`.
///
/// `weights = None` means all-ones (plain ridge). Used by the LOESS baseline
/// with tricube weights.
pub fn ridge_fit_weighted<'a, I>(
    rows: I,
    ys: &[f64],
    weights: Option<&[f64]>,
    alpha: f64,
) -> Option<RidgeModel>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut it = rows.into_iter().peekable();
    let m = it.peek().map(|r| r.len() + 1)?;
    let mut u = Matrix::zeros(m, m);
    let mut v = vec![0.0; m];
    let mut count = 0usize;
    for (i, row) in it.enumerate() {
        debug_assert_eq!(row.len() + 1, m);
        let w = weights.map_or(1.0, |ws| ws[i]);
        if w == 0.0 {
            count += 1;
            continue;
        }
        accumulate_augmented(&mut u, &mut v, row, ys[i], w);
        count += 1;
    }
    assert_eq!(count, ys.len(), "rows and ys must have equal length");
    let phi = solve_spd_regularized(&u, &v, alpha)?;
    Some(RidgeModel { phi: phi.into() })
}

/// Adds `w * (1,x)(1,x)ᵀ` into `u` and `w * y (1,x)` into `v` — one
/// observation of the *augmented* (intercept-carrying) normal equations.
///
/// Shared by [`ridge_fit_weighted`], the incremental
/// [`GramAccumulator`](crate::gram::GramAccumulator), and downstream
/// methods that need the raw Gram system (e.g. Bayesian posterior draws).
#[inline]
pub fn accumulate_augmented(u: &mut Matrix, v: &mut [f64], x: &[f64], y: f64, w: f64) {
    let m = x.len() + 1;
    debug_assert_eq!(u.rows(), m);
    // Row 0 / col 0 correspond to the constant regressor.
    u[(0, 0)] += w;
    for j in 1..m {
        let xj = x[j - 1];
        u[(0, j)] += w * xj;
        u[(j, 0)] += w * xj;
        for k in j..m {
            let add = w * xj * x[k - 1];
            u[(j, k)] += add;
            if k != j {
                u[(k, j)] += add;
            }
        }
    }
    v[0] += w * y;
    for j in 1..m {
        v[j] += w * y * x[j - 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        // y = 2 + 3x, zero noise, alpha ~ 0.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x[0]).collect();
        let model = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).expect("fit");
        assert!((model.phi[0] - 2.0).abs() < 1e-5);
        assert!((model.phi[1] - 3.0).abs() < 1e-5);
        assert!((model.predict(&[4.0]) - 14.0).abs() < 1e-4);
    }

    #[test]
    fn paper_example_2_phi1() {
        // Figure 1 tuples t1..t4 on (A1, A2); Example 2 reports
        // φ1 = (5.56, -0.87)ᵀ for l = 4.
        let xs = [[0.0], [0.8], [1.9], [2.9]];
        let ys = [5.8, 4.6, 3.8, 3.2];
        let model = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).expect("fit");
        assert!(
            (model.phi[0] - 5.56).abs() < 0.01,
            "intercept {}",
            model.phi[0]
        );
        assert!(
            (model.phi[1] - (-0.87)).abs() < 0.01,
            "slope {}",
            model.phi[1]
        );
    }

    #[test]
    fn multifeature_plane() {
        // y = 1 - 2a + 0.5b over a grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                let (a, b) = (a as f64, b as f64);
                xs.push(vec![a, b]);
                ys.push(1.0 - 2.0 * a + 0.5 * b);
            }
        }
        let model = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).expect("fit");
        assert!((model.phi[0] - 1.0).abs() < 1e-6);
        assert!((model.phi[1] + 2.0).abs() < 1e-6);
        assert!((model.phi[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn large_alpha_shrinks_coefficients() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0]).collect();
        let loose = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-9).unwrap();
        let tight = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e4).unwrap();
        assert!(tight.phi[1].abs() < loose.phi[1].abs());
    }

    #[test]
    fn weighted_fit_prefers_heavy_points() {
        // Two clusters on different lines; weights select the first.
        let xs = [[0.0], [1.0], [10.0], [11.0]];
        let ys = [0.0, 1.0, 100.0, 90.0]; // second cluster is wild
        let w = [1.0, 1.0, 0.0, 0.0];
        let model =
            ridge_fit_weighted(xs.iter().map(|v| v.as_slice()), &ys, Some(&w), 1e-9).expect("fit");
        assert!((model.phi[0]).abs() < 1e-6);
        assert!((model.phi[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn single_point_degenerate_is_handled() {
        // One observation, two unknowns: regularized solve must still return
        // finite coefficients predicting roughly y at x.
        let xs = [[2.0]];
        let ys = [7.0];
        let model = ridge_fit(xs.iter().map(|v| v.as_slice()), &ys, 1e-6).expect("fit");
        assert!(model.is_finite());
        assert!((model.predict(&[2.0]) - 7.0).abs() < 0.1);
    }

    #[test]
    fn constant_model() {
        let c = RidgeModel::constant(4.2, 3);
        assert_eq!(c.n_features(), 3);
        assert_eq!(c.predict(&[9.0, -1.0, 2.0]), 4.2);
    }
}
