#![allow(clippy::needless_range_loop)] // index loops are the idiom in these dense numeric kernels

//! Dense linear-algebra substrate for the `iim` workspace.
//!
//! The IIM paper (ICDE 2019, "Learning Individual Models for Imputation")
//! learns one small ridge-regression model per tuple (Formula 5) and keeps
//! those models cheap to re-learn under a growing neighbor set via
//! incremental Gram-matrix maintenance (Proposition 3, Formula 19). The
//! matrices involved are `m x m` where `m` is the attribute count of a
//! relation — single digits to a few tens — so this crate favours simple,
//! allocation-conscious dense kernels over BLAS bindings:
//!
//! * [`Matrix`] — row-major dense matrix with the handful of ops the
//!   workspace needs (products, transpose, norms).
//! * [`cholesky`] / [`lu`](solve::LuFactors) — SPD and
//!   general linear solvers; ridge systems are SPD by construction.
//! * [`eigen_sym`] — cyclic Jacobi eigendecomposition of
//!   symmetric matrices, the workhorse behind the thin SVD.
//! * [`thin_svd`] — SVD of tall matrices via the `m x m`
//!   normal-equations eigenproblem (used by the SVDimpute baseline).
//! * [`ridge`] — Ordinary ridge regression `(XᵀX + αE)⁻¹ Xᵀy`.
//! * [`GramAccumulator`] — the incremental `U`/`V`
//!   pair of Proposition 3: add rows in O(m²) and re-solve in O(m³),
//!   independent of how many rows have been absorbed.
//!
//! Everything is `f64`; the workspace deliberately avoids external linear
//! algebra crates (see DESIGN.md).

pub mod eigen;
pub mod gram;
pub mod matrix;
pub mod ridge;
pub mod solve;
pub mod svd;

pub use eigen::eigen_sym;
pub use gram::GramAccumulator;
pub use matrix::Matrix;
pub use ridge::{ridge_fit, ridge_fit_weighted, RidgeModel};
pub use solve::{cholesky, solve_spd, LuFactors};
pub use svd::{thin_svd, ThinSvd};

/// Numerical tolerance used across the crate for "is effectively zero"
/// decisions (pivot checks, convergence thresholds).
pub const EPS: f64 = 1e-12;
