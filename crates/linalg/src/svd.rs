//! Thin singular value decomposition for tall matrices.
//!
//! The SVDimpute baseline [Troyanskaya et al., Bioinformatics 2001] needs the
//! top singular triplets of an `n x m` data matrix with `n >= m` and small
//! `m`. For that shape, the thin SVD follows directly from the symmetric
//! eigendecomposition of the `m x m` matrix `AᵀA`:
//! `A = U Σ Vᵀ` with `V` the eigenvectors of `AᵀA`, `σ_j = sqrt(λ_j)`, and
//! `u_j = A v_j / σ_j`.

use crate::eigen::eigen_sym;
use crate::matrix::Matrix;
use crate::EPS;

/// Thin SVD `A = U Σ Vᵀ` of an `n x m` matrix (`n >= m`).
#[derive(Debug, Clone)]
pub struct ThinSvd {
    /// `n x r` left singular vectors (columns), `r = rank kept`.
    pub u: Matrix,
    /// Singular values in descending order, length `r`.
    pub sigma: Vec<f64>,
    /// `m x r` right singular vectors (columns).
    pub v: Matrix,
}

/// Computes the thin SVD of `a` (requires `rows >= cols`).
///
/// Singular values below `EPS * σ_max` are dropped, so the returned rank can
/// be smaller than `cols` for rank-deficient inputs.
pub fn thin_svd(a: &Matrix) -> ThinSvd {
    assert!(
        a.rows() >= a.cols(),
        "thin_svd expects a tall matrix (rows >= cols); transpose first"
    );
    let m = a.cols();
    let gram = a.gram();
    let eig = eigen_sym(&gram);

    // Keep numerically positive eigenvalues.
    let sigma_all: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    let smax = sigma_all.first().copied().unwrap_or(0.0);
    let rank = sigma_all
        .iter()
        .take_while(|&&s| s > EPS * smax.max(1.0))
        .count();

    let mut v = Matrix::zeros(m, rank);
    for j in 0..rank {
        for i in 0..m {
            v[(i, j)] = eig.vectors[(i, j)];
        }
    }
    let mut u = Matrix::zeros(a.rows(), rank);
    // u_j = A v_j / sigma_j
    for j in 0..rank {
        let inv_s = 1.0 / sigma_all[j];
        for row in 0..a.rows() {
            let arow = a.row(row);
            let mut sum = 0.0;
            for i in 0..m {
                sum += arow[i] * v[(i, j)];
            }
            u[(row, j)] = sum * inv_s;
        }
    }
    ThinSvd {
        u,
        sigma: sigma_all[..rank].to_vec(),
        v,
    }
}

impl ThinSvd {
    /// Rank-`k` reconstruction `U_k Σ_k V_kᵀ` (k clamped to the kept rank).
    pub fn reconstruct(&self, k: usize) -> Matrix {
        let k = k.min(self.sigma.len());
        let n = self.u.rows();
        let m = self.v.rows();
        let mut out = Matrix::zeros(n, m);
        for j in 0..k {
            let s = self.sigma[j];
            for row in 0..n {
                let us = self.u[(row, j)] * s;
                if us == 0.0 {
                    continue;
                }
                let orow = out.row_mut(row);
                for col in 0..m {
                    orow[col] += us * self.v[(col, j)];
                }
            }
        }
        out
    }

    /// Number of singular triplets kept.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstructs_full_rank() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[-1.0, 0.5]]);
        let svd = thin_svd(&a);
        assert_eq!(svd.rank(), 2);
        let rec = svd.reconstruct(2);
        assert!(rec.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn singular_values_sorted_and_match_norm() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0], &[0.0, 0.0]]);
        let svd = thin_svd(&a);
        assert!((svd.sigma[0] - 4.0).abs() < 1e-10);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-10);
        // Frobenius norm equals sqrt of sum of squared singular values.
        let fro = a.frobenius_norm();
        let s2: f64 = svd.sigma.iter().map(|s| s * s).sum();
        assert!((fro - s2.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn drops_null_directions() {
        // Second column is a multiple of the first: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let svd = thin_svd(&a);
        assert_eq!(svd.rank(), 1);
        let rec = svd.reconstruct(1);
        assert!(rec.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn orthonormal_factors() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.5, -2.0],
            &[2.0, 1.0, 0.0],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[-1.0, 2.0, 0.5],
        ]);
        let svd = thin_svd(&a);
        let utu = svd.u.transpose().matmul(&svd.u);
        let vtv = svd.v.transpose().matmul(&svd.v);
        assert!(utu.max_abs_diff(&Matrix::identity(svd.rank())) < 1e-8);
        assert!(vtv.max_abs_diff(&Matrix::identity(svd.rank())) < 1e-8);
    }

    #[test]
    fn truncated_reconstruction_is_best_effort() {
        let a = Matrix::from_rows(&[&[10.0, 0.0], &[0.0, 0.1], &[10.0, 0.0]]);
        let svd = thin_svd(&a);
        let r1 = svd.reconstruct(1);
        // Dominant direction preserved, minor direction dropped.
        assert!((r1[(0, 0)] - 10.0).abs() < 1e-6);
        assert!(r1[(1, 1)].abs() < 0.1 + 1e-9);
    }
}
