//! Linear solvers: Cholesky for SPD systems, LU with partial pivoting for
//! general square systems.
//!
//! Ridge systems `(XᵀX + αE) φ = Xᵀy` are symmetric positive definite for
//! any `α > 0`, so Cholesky is the default path in the workspace; LU exists
//! as the general fallback (and for explicit inverses in tests).

use crate::matrix::Matrix;
use crate::EPS;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Returns `None` when `A` is not (numerically) positive definite.
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, i)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves the SPD system `A x = b` via Cholesky.
///
/// Returns `None` when `A` is not positive definite (callers typically add a
/// ridge shift and retry; see [`solve_spd_regularized`]).
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let l = cholesky(a)?;
    Some(cholesky_solve(&l, b))
}

/// Solves `A x = b` given the precomputed Cholesky factor `L` of `A`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    // Forward substitution: L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * z[k];
        }
        z[i] = sum / l[(i, i)];
    }
    // Back substitution: Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solves an SPD system that may be only semidefinite by escalating a
/// diagonal shift until Cholesky succeeds.
///
/// The IIM learning phase hits rank-deficient Gram matrices whenever a tuple
/// has fewer distinct neighbors than attributes (e.g. tiny ℓ); the paper's
/// ridge term makes the system definite, but with the paper-faithful default
/// `α = 1e-6` extreme data scales can still defeat it numerically. The shift
/// sequence is `α, 10α, …` capped at `1e6` relative to the mean diagonal.
pub fn solve_spd_regularized(a: &Matrix, b: &[f64], alpha0: f64) -> Option<Vec<f64>> {
    let n = a.rows();
    let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>().max(EPS) / n as f64;
    let mut shift = alpha0.max(0.0);
    for _ in 0..40 {
        let mut shifted = a.clone();
        if shift > 0.0 {
            shifted.add_diag(shift);
        }
        if let Some(x) = solve_spd(&shifted, b) {
            if x.iter().all(|v| v.is_finite()) {
                return Some(x);
            }
        }
        shift = if shift == 0.0 {
            EPS * mean_diag
        } else {
            shift * 10.0
        };
        if shift > 1e6 * mean_diag {
            break;
        }
    }
    None
}

/// LU factorization with partial pivoting: `P A = L U`.
///
/// `L` has an implicit unit diagonal; both factors are packed into one
/// matrix. `perm[i]` records the source row of pivoted row `i`.
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
    /// Sign of the permutation, exposed for determinant computation.
    sign: f64,
}

impl LuFactors {
    /// Factorizes `a`. Returns `None` when a pivot collapses (singular).
    pub fn new(a: &Matrix) -> Option<Self> {
        assert_eq!(a.rows(), a.cols(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for col in 0..n {
            // Pivot search.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in col + 1..n {
                let v = lu[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < EPS || !pivot_val.is_finite() {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(col, pivot_row);
                sign = -sign;
            }
            // Eliminate below the pivot.
            let inv = 1.0 / lu[(col, col)];
            for r in col + 1..n {
                let factor = lu[(r, col)] * inv;
                lu[(r, col)] = factor;
                if factor != 0.0 {
                    for j in col + 1..n {
                        let upper = lu[(col, j)];
                        lu[(r, j)] -= factor * upper;
                    }
                }
            }
        }
        Some(Self { lu, perm, sign })
    }

    /// Reassembles factors from raw parts (the snapshot decode path).
    /// The parts must come from [`LuFactors::parts`] — no validation is
    /// performed beyond the square-shape and permutation-length checks.
    pub fn from_parts(lu: Matrix, perm: Vec<usize>, sign: f64) -> Self {
        assert_eq!(lu.rows(), lu.cols(), "LU factors must be square");
        assert_eq!(perm.len(), lu.rows(), "one permutation entry per row");
        Self { lu, perm, sign }
    }

    /// The packed factors, permutation, and sign (the snapshot encode
    /// path; inverse of [`LuFactors::from_parts`]).
    pub fn parts(&self) -> (&Matrix, &[usize], f64) {
        (&self.lu, &self.perm, self.sign)
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        x
    }

    /// Explicit inverse of the factorized matrix (column-by-column solve).
    pub fn inverse(&self) -> Matrix {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = self.solve(&e);
            for row in 0..n {
                inv[(row, col)] = x[row];
            }
            e[col] = 0.0;
        }
        inv
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.sign;
        for i in 0..n {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]);
        let mut a = b.gram();
        a.add_diag(1.0);
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).expect("SPD");
        let rec = l.matmul(&l.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_spd_matches_direct() {
        let a = spd3();
        let b = vec![1.0, -2.0, 3.0];
        let x = solve_spd(&a, &b).expect("SPD");
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn regularized_handles_semidefinite() {
        // Rank-1 Gram matrix: plain Cholesky fails, regularized succeeds.
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let g = x.gram();
        assert!(cholesky(&g).is_none());
        let sol = solve_spd_regularized(&g, &[1.0, 2.0], 1e-6).expect("regularized");
        assert!(sol.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lu_solves_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -1.0, 0.0], &[3.0, 0.0, -2.0]]);
        let lu = LuFactors::new(&a).expect("nonsingular");
        let b = vec![3.0, 1.0, 2.0];
        let x = lu.solve(&b);
        let back = a.matvec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(LuFactors::new(&a).is_none());
    }

    #[test]
    fn lu_inverse_and_det() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let lu = LuFactors::new(&a).expect("nonsingular");
        assert!((lu.det() - 10.0).abs() < 1e-9);
        let inv = lu.inverse();
        let id = a.matmul(&inv);
        assert!(id.max_abs_diff(&Matrix::identity(2)) < 1e-9);
    }

    #[test]
    fn lu_pivoting_keeps_accuracy() {
        // Requires row exchange on the first column.
        let a = Matrix::from_rows(&[&[1e-14, 1.0], &[1.0, 1.0]]);
        let lu = LuFactors::new(&a).expect("nonsingular");
        let x = lu.solve(&[1.0, 2.0]);
        let back = a.matvec(&x);
        assert!((back[0] - 1.0).abs() < 1e-8);
        assert!((back[1] - 2.0).abs() < 1e-8);
    }
}
