//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The workspace only eigendecomposes small symmetric matrices (`m x m`
//! Gram/covariance matrices where `m` is an attribute count), for which the
//! Jacobi method is simple, robust, and accurate to machine precision.

use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Column `j` of `vectors` is the unit eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Sweeps Givens rotations over all off-diagonal entries until their total
/// magnitude drops below `1e-12 * ||A||_F` or 100 sweeps elapse (in practice
/// a handful of sweeps suffices for the sizes used here). Panics if `a` is
/// not square; symmetry of the input is the caller's responsibility (only
/// the upper triangle is trusted).
pub fn eigen_sym(a: &Matrix) -> SymEigen {
    assert_eq!(a.rows(), a.cols(), "eigen_sym requires a square matrix");
    let n = a.rows();
    let mut d = a.clone();
    // Symmetrize defensively: downstream callers build A from products that
    // are symmetric up to rounding.
    for i in 0..n {
        for j in 0..i {
            let avg = 0.5 * (d[(i, j)] + d[(j, i)]);
            d[(i, j)] = avg;
            d[(j, i)] = avg;
        }
    }
    let mut v = Matrix::identity(n);
    let tol = 1e-12 * d.frobenius_norm().max(1.0);

    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += d[(i, j)].abs();
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = d[(p, q)];
                if apq.abs() <= tol / (n * n) as f64 {
                    continue;
                }
                // Rotation angle zeroing d[(p,q)].
                let theta = (d[(q, q)] - d[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation: rows/cols p and q of D.
                for k in 0..n {
                    let dkp = d[(k, p)];
                    let dkq = d[(k, q)];
                    d[(k, p)] = c * dkp - s * dkq;
                    d[(k, q)] = s * dkp + c * dkq;
                }
                for k in 0..n {
                    let dpk = d[(p, k)];
                    let dqk = d[(q, k)];
                    d[(p, k)] = c * dpk - s * dqk;
                    d[(q, k)] = s * dpk + c * dqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| d[(i, i)]).collect();
    order.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("finite eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for row in 0..n {
            vectors[(row, new_col)] = v[(row, old_col)];
        }
    }
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = eigen_sym(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigen_sym(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = (e.vectors[(0, 0)], e.vectors[(1, 0)]);
        assert!((v0.0.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0.0 - v0.1).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let b = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, -1.0],
            &[0.5, -1.0, 2.0, 0.0],
            &[2.0, 0.0, 1.0, 4.0],
        ]);
        let a = b.gram(); // symmetric PSD 4x4
        let e = eigen_sym(&a);

        // V diag(λ) Vᵀ == A
        let n = a.rows();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!(rec.max_abs_diff(&a) < 1e-8);

        // Vᵀ V == I
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.max_abs_diff(&Matrix::identity(n)) < 1e-10);

        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_preserved() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 2.0]]);
        let e = eigen_sym(&a);
        let trace = 4.0 + 3.0 + 2.0;
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }
}
