//! Aligned shared byte buffers and **view-or-owned** numeric slices.
//!
//! The validate-then-view snapshot path (format v3) keeps one read-only,
//! checksum-validated byte buffer alive and lets fitted models *borrow*
//! their numeric payloads (feature matrices, ridge coefficients, pools)
//! straight out of it instead of parsing each into a fresh `Vec`. Two
//! types make that safe and ergonomic:
//!
//! * [`AlignedBuf`] / [`SharedBytes`] — an immutable byte buffer whose
//!   backing storage is 8-byte aligned (it is a `Vec<u64>` underneath),
//!   shared via `Arc` so any number of views keep it alive.
//! * [`FloatSlice`] / [`U32Slice`] — either an owned `Vec<T>` or a view
//!   `(buf, byte_off, len)` into a [`SharedBytes`]. Both deref to `[T]`,
//!   so downstream numeric code is oblivious; mutation goes through a
//!   copy-on-write [`FloatSlice::to_mut`].
//!
//! The *only* `unsafe` in the workspace lives in this crate's `cast`
//! helpers: reinterpreting `&[u64]` as `&[u8]` and (alignment-checked)
//! `&[u8]` as `&[f64]`/`&[u32]`. Every target type is valid for all bit
//! patterns, alignment is verified at runtime, and lengths are derived
//! from the source slice, so no construction can read out of bounds.
//! Snapshots are little-endian on the wire; on a big-endian host the view
//! constructors transparently fall back to an owned, byte-swapped copy,
//! so results are identical everywhere (views are purely a fast path).

/// Audited reinterpret casts. Kept in one tiny module so the safety
/// argument has a single home.
mod cast {
    #![allow(unsafe_code)]

    /// View a word slice as its underlying bytes.
    ///
    /// Safety: `u8` has alignment 1 and no invalid bit patterns; the
    /// returned length is exactly the byte length of the source slice and
    /// the lifetime is inherited from it.
    pub fn bytes_of(words: &[u64]) -> &[u8] {
        unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), words.len() * 8) }
    }

    /// View bytes as `&[f64]`, or `None` if the pointer is misaligned or
    /// the length is not a multiple of 8.
    ///
    /// Safety: alignment and length are checked above the cast; `f64` is
    /// valid for every bit pattern (NaN payloads included); the lifetime
    /// is inherited from the source slice.
    pub fn f64s_of(bytes: &[u8]) -> Option<&[f64]> {
        if !bytes.len().is_multiple_of(8)
            || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<f64>())
        {
            return None;
        }
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), bytes.len() / 8) })
    }

    /// View bytes as `&[u32]`, or `None` if misaligned or ragged.
    ///
    /// Safety: as [`f64s_of`]; `u32` is valid for every bit pattern.
    pub fn u32s_of(bytes: &[u8]) -> Option<&[u32]> {
        if !bytes.len().is_multiple_of(4)
            || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        {
            return None;
        }
        Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) })
    }

    /// View a word slice as its underlying bytes, mutably.
    ///
    /// Safety: as [`bytes_of`] — `u8` has alignment 1 and no invalid bit
    /// patterns, the length is exactly the byte length of the source
    /// slice, and the exclusive borrow is inherited from it.
    pub fn bytes_of_mut(words: &mut [u64]) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), words.len() * 8) }
    }
}

/// An immutable byte buffer whose storage is 8-byte aligned.
///
/// Backed by a `Vec<u64>` so the base pointer satisfies `f64`/`u64`
/// alignment; the logical byte length may be any value (the final word is
/// zero-padded).
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// Copy `bytes` into freshly allocated aligned storage — one straight
    /// memcpy into zero-initialized words (the final word's tail bytes
    /// stay zero), not a per-word decode loop; snapshot activation copies
    /// whole payloads through here.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        cast::bytes_of_mut(&mut words)[..bytes.len()].copy_from_slice(bytes);
        Self {
            words,
            len: bytes.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer's bytes; the base pointer is 8-aligned.
    pub fn as_slice(&self) -> &[u8] {
        &cast::bytes_of(&self.words)[..self.len]
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf({} bytes)", self.len)
    }
}

/// A shared, immutable, aligned byte buffer. Cloning is an `Arc` bump.
pub type SharedBytes = std::sync::Arc<AlignedBuf>;

/// Copy `bytes` into a new [`SharedBytes`].
pub fn shared(bytes: &[u8]) -> SharedBytes {
    std::sync::Arc::new(AlignedBuf::from_bytes(bytes))
}

macro_rules! pod_slice {
    ($name:ident, $t:ty, $width:expr, $cast:path, $from_le:expr) => {
        /// Either an owned `Vec` or a validated view into a [`SharedBytes`].
        ///
        /// Derefs to a slice, so numeric code downstream does not care
        /// which it is. Views keep the whole backing buffer alive; use
        /// [`Self::to_mut`] for copy-on-write mutation.
        #[derive(Clone)]
        pub struct $name(Repr<$t>);

        impl $name {
            /// A view of `len` elements starting `byte_off` bytes into
            /// `buf`.
            ///
            /// The range must be in bounds — the caller is expected to
            /// have bounds-validated its section table first; an
            /// out-of-range request is a logic error and panics. If the
            /// offset is misaligned for the element type, or the host is
            /// big-endian (snapshots are little-endian on the wire), the
            /// data is copied into an owned slice instead, so the result
            /// is identical either way.
            pub fn view(buf: &SharedBytes, byte_off: usize, len: usize) -> Self {
                let bytes = &buf.as_slice()[byte_off..byte_off + len * $width];
                if cfg!(target_endian = "little") && $cast(bytes).is_some() {
                    $name(Repr::View {
                        buf: buf.clone(),
                        byte_off,
                        len,
                    })
                } else {
                    let decode: fn(&[u8]) -> $t = $from_le;
                    $name(Repr::Owned(
                        bytes.chunks_exact($width).map(decode).collect(),
                    ))
                }
            }

            pub fn as_slice(&self) -> &[$t] {
                match &self.0 {
                    Repr::Owned(v) => v,
                    Repr::View { buf, byte_off, len } => {
                        let bytes = &buf.as_slice()[*byte_off..*byte_off + len * $width];
                        $cast(bytes).expect("alignment was validated at construction")
                    }
                }
            }

            /// Copy-on-write access: converts a view into an owned `Vec`
            /// on first call, then hands out the `Vec` directly.
            pub fn to_mut(&mut self) -> &mut Vec<$t> {
                if let Repr::View { .. } = self.0 {
                    self.0 = Repr::Owned(self.as_slice().to_vec());
                }
                match &mut self.0 {
                    Repr::Owned(v) => v,
                    Repr::View { .. } => unreachable!("converted to owned above"),
                }
            }

            pub fn into_vec(mut self) -> Vec<$t> {
                std::mem::take(self.to_mut())
            }

            /// True when backed by a shared buffer rather than an owned
            /// allocation (bench/test introspection).
            pub fn is_view(&self) -> bool {
                matches!(self.0, Repr::View { .. })
            }
        }

        impl std::ops::Deref for $name {
            type Target = [$t];
            fn deref(&self) -> &[$t] {
                self.as_slice()
            }
        }

        impl From<Vec<$t>> for $name {
            fn from(v: Vec<$t>) -> Self {
                $name(Repr::Owned(v))
            }
        }

        impl From<&[$t]> for $name {
            fn from(v: &[$t]) -> Self {
                $name(Repr::Owned(v.to_vec()))
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name(Repr::Owned(Vec::new()))
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                std::fmt::Debug::fmt(self.as_slice(), f)
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl PartialEq<Vec<$t>> for $name {
            fn eq(&self, other: &Vec<$t>) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl PartialEq<$name> for Vec<$t> {
            fn eq(&self, other: &$name) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl PartialEq<[$t]> for $name {
            fn eq(&self, other: &[$t]) -> bool {
                self.as_slice() == other
            }
        }

        impl<'a> IntoIterator for &'a $name {
            type Item = &'a $t;
            type IntoIter = std::slice::Iter<'a, $t>;
            fn into_iter(self) -> Self::IntoIter {
                self.as_slice().iter()
            }
        }

        impl FromIterator<$t> for $name {
            fn from_iter<I: IntoIterator<Item = $t>>(iter: I) -> Self {
                $name(Repr::Owned(iter.into_iter().collect()))
            }
        }
    };
}

#[derive(Clone)]
enum Repr<T> {
    Owned(Vec<T>),
    View {
        buf: SharedBytes,
        byte_off: usize,
        len: usize,
    },
}

pod_slice!(FloatSlice, f64, 8, cast::f64s_of, |c: &[u8]| {
    f64::from_le_bytes(c.try_into().expect("chunk of 8"))
});
pod_slice!(U32Slice, u32, 4, cast::u32s_of, |c: &[u8]| {
    u32::from_le_bytes(c.try_into().expect("chunk of 4"))
});

#[cfg(test)]
mod tests {
    use super::*;

    fn le_bytes(vals: &[f64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn aligned_buf_round_trips_any_length() {
        for len in 0..33 {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let buf = AlignedBuf::from_bytes(&bytes);
            assert_eq!(buf.as_slice(), &bytes[..]);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn float_view_sees_the_encoded_values() {
        let vals = [1.5, -2.25, f64::NAN, 0.0, 1e300];
        let buf = shared(&le_bytes(&vals));
        let s = FloatSlice::view(&buf, 0, vals.len());
        assert_eq!(s.len(), vals.len());
        for (a, b) in s.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn misaligned_view_falls_back_to_owned_with_identical_values() {
        // 4 bytes of junk, then floats: offset 4 is misaligned for f64.
        let vals = [3.25, -0.5];
        let mut bytes = vec![0xAAu8; 4];
        bytes.extend(le_bytes(&vals));
        let buf = shared(&bytes);
        let s = FloatSlice::view(&buf, 4, vals.len());
        assert!(!s.is_view());
        assert_eq!(&*s, &vals[..]);
        // Offset 4 is fine for u32 (alignment 4).
        let u = U32Slice::view(&buf, 4, 4);
        assert!(u.is_view() || !cfg!(target_endian = "little"));
    }

    #[test]
    fn u32_view_matches_le_decode() {
        let vals = [0u32, 1, u32::MAX, 0xDEAD_BEEF];
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = shared(&bytes);
        let s = U32Slice::view(&buf, 0, vals.len());
        assert_eq!(&*s, &vals[..]);
    }

    #[test]
    fn to_mut_is_copy_on_write() {
        let buf = shared(&le_bytes(&[1.0, 2.0, 3.0]));
        let mut s = FloatSlice::view(&buf, 0, 3);
        s.to_mut().push(4.0);
        assert!(!s.is_view());
        assert_eq!(s, vec![1.0, 2.0, 3.0, 4.0]);
        // The backing buffer is untouched.
        let again = FloatSlice::view(&buf, 0, 3);
        assert_eq!(again, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equality_crosses_representations() {
        let buf = shared(&le_bytes(&[7.0, 8.0]));
        let view = FloatSlice::view(&buf, 0, 2);
        let owned: FloatSlice = vec![7.0, 8.0].into();
        assert_eq!(view, owned);
        assert_eq!(view, vec![7.0, 8.0]);
        assert_eq!(vec![7.0, 8.0], view);
    }

    #[test]
    fn views_are_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<FloatSlice>();
        check::<U32Slice>();
        check::<SharedBytes>();
    }

    #[test]
    #[should_panic]
    fn out_of_range_view_panics() {
        let buf = shared(&[0u8; 16]);
        let _ = FloatSlice::view(&buf, 8, 2);
    }
}
