//! KD-tree kNN for the large-`n` experiments.
//!
//! The paper's complexity analysis assumes brute-force search ("advanced
//! indexing and searching techniques could be applied, which is not the
//! focus of this study"); the tree exists so the SN-scale workloads
//! (100k tuples) stay tractable in the harness. Results are identical to
//! [`brute`](crate::brute) — property-tested — because both use the same
//! distance and the same deterministic tie-break.

use crate::brute::{FeatureMatrix, Neighbor};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A balanced KD-tree over the points of a [`FeatureMatrix`].
pub struct KdTree<'a> {
    points: &'a FeatureMatrix,
    /// Flattened tree: node `v` owns `idx[range]` with children around the
    /// median; leaves hold up to `LEAF` points.
    nodes: Vec<Node>,
    idx: Vec<u32>,
}

const LEAF: usize = 16;

struct Node {
    /// Split dimension; `usize::MAX` marks a leaf.
    dim: usize,
    /// Split coordinate value.
    split: f64,
    /// `idx` range covered by this node.
    start: u32,
    end: u32,
    /// Children indices in `nodes` (0 = none).
    left: u32,
    right: u32,
}

impl<'a> KdTree<'a> {
    /// Builds a tree over all points of `points`.
    pub fn build(points: &'a FeatureMatrix) -> Self {
        let n = points.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * (n / LEAF + 1));
        // Root placeholder so child index 0 can mean "none".
        nodes.push(Node {
            dim: usize::MAX,
            split: 0.0,
            start: 0,
            end: 0,
            left: 0,
            right: 0,
        });
        if n > 0 {
            Self::build_rec(points, &mut nodes, &mut idx, 0, n, 0);
        }
        Self { points, nodes, idx }
    }

    fn build_rec(
        points: &FeatureMatrix,
        nodes: &mut Vec<Node>,
        idx: &mut [u32],
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        let node_id = nodes.len() as u32;
        if end - start <= LEAF {
            nodes.push(Node {
                dim: usize::MAX,
                split: 0.0,
                start: start as u32,
                end: end as u32,
                left: 0,
                right: 0,
            });
            return node_id;
        }
        // Split on the dimension with the largest spread at this depth
        // window; cycling by depth is cheaper and nearly as good for the
        // low dimensionalities here.
        let dim = depth % points.n_features();
        let mid = (start + end) / 2;
        idx[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            points.point(a as usize)[dim]
                .total_cmp(&points.point(b as usize)[dim])
                .then(a.cmp(&b))
        });
        let split = points.point(idx[mid] as usize)[dim];
        nodes.push(Node {
            dim,
            split,
            start: start as u32,
            end: end as u32,
            left: 0,
            right: 0,
        });
        let left = Self::build_rec(points, nodes, idx, start, mid, depth + 1);
        let right = Self::build_rec(points, nodes, idx, mid, end, depth + 1);
        nodes[node_id as usize].left = left;
        nodes[node_id as usize].right = right;
        node_id
    }

    /// The k nearest points to `query`, ascending by `(distance, position)`
    /// — bit-identical ordering to [`FeatureMatrix::knn`].
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// kNN lists for a batch of query rows, fanned out on `pool` — the
    /// tree analog of [`FeatureMatrix::knn_batch`]. The tree is
    /// `Send + Sync` (it only reads the backing matrix after build), so
    /// workers share one index; results are in query order and identical
    /// for every worker count.
    pub fn knn_batch(
        &self,
        pool: &iim_exec::Pool,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        pool.parallel_map_indexed(queries.len(), |i| self.knn(&queries[i], k))
    }

    /// [`KdTree::knn`] into a reusable buffer.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        out.clear();
        if k == 0 || self.points.is_empty() {
            return;
        }
        let k = k.min(self.points.len());
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(k + 1);
        self.search(1, query, k, &mut heap);
        out.extend(heap.into_iter().map(|e| Neighbor {
            pos: e.pos,
            dist: (e.sq / self.points.n_features() as f64).sqrt(),
        }));
        out.sort_by(|a, b| {
            (a.dist, a.pos)
                .partial_cmp(&(b.dist, b.pos))
                .expect("finite")
        });
    }

    fn search(&self, node_id: u32, query: &[f64], k: usize, heap: &mut BinaryHeap<Entry>) {
        let node = &self.nodes[node_id as usize];
        if node.dim == usize::MAX {
            for &p in &self.idx[node.start as usize..node.end as usize] {
                let pt = self.points.point(p as usize);
                let mut sq = 0.0;
                for (a, b) in query.iter().zip(pt) {
                    let d = a - b;
                    sq += d * d;
                }
                push_bounded(heap, k, Entry { sq, pos: p });
            }
            return;
        }
        let diff = query[node.dim] - node.split;
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        self.search(near, query, k, heap);
        // Prune the far side when the splitting plane is beyond the current
        // worst distance (or the heap is not yet full).
        let worst = heap.peek().map(|e| e.sq).unwrap_or(f64::INFINITY);
        if heap.len() < k || diff * diff <= worst {
            self.search(far, query, k, heap);
        }
    }
}

#[derive(PartialEq)]
struct Entry {
    /// *Unnormalized* squared distance (normalization is monotonic, applied
    /// on output).
    sq: f64,
    pos: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sq.total_cmp(&other.sq).then(self.pos.cmp(&other.pos))
    }
}

fn push_bounded(heap: &mut BinaryHeap<Entry>, k: usize, e: Entry) {
    if heap.len() < k {
        heap.push(e);
    } else if let Some(worst) = heap.peek() {
        if (e.sq, e.pos) < (worst.sq, worst.pos) {
            heap.pop();
            heap.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-10.0..10.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect(), data)
    }

    #[test]
    fn agrees_with_brute_force() {
        for &(n, f) in &[(1usize, 1usize), (5, 2), (100, 1), (257, 3), (1000, 4)] {
            let fm = random_matrix(n, f, n as u64 * 31 + f as u64);
            let tree = KdTree::build(&fm);
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..20 {
                let q: Vec<f64> = (0..f).map(|_| rng.gen_range(-12.0..12.0)).collect();
                let k = rng.gen_range(1..=n.min(12));
                let a = fm.knn(&q, k);
                let b = tree.knn(&q, k);
                assert_eq!(a.len(), b.len(), "n={n} f={f} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos, "n={n} f={f} k={k}");
                    assert!((x.dist - y.dist).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn empty_and_k_zero() {
        let fm = FeatureMatrix::from_dense(2, vec![], vec![]);
        let tree = KdTree::build(&fm);
        assert!(tree.knn(&[0.0, 0.0], 3).is_empty());
        let fm2 = random_matrix(10, 2, 1);
        let tree2 = KdTree::build(&fm2);
        assert!(tree2.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn tree_is_send_sync_and_batch_matches_brute() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KdTree<'static>>();

        let fm = random_matrix(200, 3, 8);
        let tree = KdTree::build(&fm);
        let mut rng = StdRng::seed_from_u64(4);
        let queries: Vec<Vec<f64>> = (0..80)
            .map(|_| (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect())
            .collect();
        let pool = iim_exec::Pool::new(4).with_serial_cutoff(1);
        let batch = tree.knn_batch(&pool, &queries, 7);
        for (q, nn) in queries.iter().zip(&batch) {
            let brute = fm.knn(q, 7);
            assert_eq!(nn.len(), brute.len());
            for (a, b) in nn.iter().zip(&brute) {
                assert_eq!(a.pos, b.pos);
            }
        }
    }

    #[test]
    fn exact_point_has_zero_distance() {
        let fm = random_matrix(64, 3, 5);
        let tree = KdTree::build(&fm);
        let q: Vec<f64> = fm.point(17).to_vec();
        let nn = tree.knn(&q, 1);
        assert_eq!(nn[0].pos, 17);
        assert_eq!(nn[0].dist, 0.0);
    }
}
