//! KD-tree kNN for the large-`n` workloads.
//!
//! The paper's complexity analysis assumes brute-force search ("advanced
//! indexing and searching techniques could be applied, which is not the
//! focus of this study"); the tree exists so the SN-scale workloads
//! (100k tuples) stay tractable and so online serving is sub-linear in the
//! training size. Results are identical to [`brute`](crate::brute) —
//! property-tested — because both paths score candidates with the *same*
//! [`sq_dist_f`](crate::sq_dist_f) call and select through the same
//! `(squared distance, position)` bounded heap, so even rounding-induced
//! ties resolve identically.
//!
//! The tree **owns** its gathered [`FeatureMatrix`]: a fitted model can
//! store it (`Send + Sync`) and serve queries from any number of threads —
//! the storable shape [`NeighborIndex`](crate::index::NeighborIndex) wraps.

use crate::brute::{FeatureMatrix, Neighbor};
use crate::heap::{scan_rows_perm, scan_rows_seq, Entry, KnnScratch};
use std::collections::BinaryHeap;

const LEAF: usize = 16;

struct Node {
    /// Split dimension; `usize::MAX` marks a leaf.
    dim: usize,
    /// Split coordinate value.
    split: f64,
    /// `idx` range covered by this node.
    start: u32,
    end: u32,
    /// Children indices in `nodes` (0 = none).
    left: u32,
    right: u32,
}

/// The tree *structure* alone — flattened nodes plus the point permutation
/// — borrowed against whatever [`FeatureMatrix`] it was built from.
///
/// Kept separate from the owning [`KdTree`] so transient consumers (the
/// [`NeighborOrders`](crate::orders::NeighborOrders) offline build) can
/// index a borrowed matrix without cloning it.
pub(crate) struct TreeNodes {
    nodes: Vec<Node>,
    idx: Vec<u32>,
    /// `idx.len() × m` row-major copy of the points in `idx` order, so
    /// leaf scans feed the batched distance kernel contiguous rows.
    gathered: Vec<f64>,
}

impl TreeNodes {
    /// Builds the structure over all points of `points`.
    pub(crate) fn build(points: &FeatureMatrix) -> Self {
        let n = points.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * (n / LEAF + 1));
        // Root placeholder so child index 0 can mean "none".
        nodes.push(Node {
            dim: usize::MAX,
            split: 0.0,
            start: 0,
            end: 0,
            left: 0,
            right: 0,
        });
        if n > 0 {
            Self::build_rec(points, &mut nodes, &mut idx, 0, n, 0);
        }
        let m = points.n_features();
        let mut gathered = Vec::with_capacity(n * m);
        for &p in &idx {
            gathered.extend_from_slice(points.point(p as usize));
        }
        Self {
            nodes,
            idx,
            gathered,
        }
    }

    fn build_rec(
        points: &FeatureMatrix,
        nodes: &mut Vec<Node>,
        idx: &mut [u32],
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        let node_id = nodes.len() as u32;
        if end - start <= LEAF {
            nodes.push(Node {
                dim: usize::MAX,
                split: 0.0,
                start: start as u32,
                end: end as u32,
                left: 0,
                right: 0,
            });
            return node_id;
        }
        // Cycle the split dimension by depth; cheaper than a spread scan
        // and nearly as good for the low dimensionalities here.
        let dim = depth % points.n_features();
        let mid = (start + end) / 2;
        idx[start..end].select_nth_unstable_by(mid - start, |&a, &b| {
            points.point(a as usize)[dim]
                .total_cmp(&points.point(b as usize)[dim])
                .then(a.cmp(&b))
        });
        let split = points.point(idx[mid] as usize)[dim];
        nodes.push(Node {
            dim,
            split,
            start: start as u32,
            end: end as u32,
            left: 0,
            right: 0,
        });
        let left = Self::build_rec(points, nodes, idx, start, mid, depth + 1);
        let right = Self::build_rec(points, nodes, idx, mid, end, depth + 1);
        nodes[node_id as usize].left = left;
        nodes[node_id as usize].right = right;
        node_id
    }

    /// Top-k query against `points` (the matrix this structure was built
    /// from) into caller-owned scratch + output buffers.
    pub(crate) fn knn_with(
        &self,
        points: &FeatureMatrix,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        scratch.heap.clear();
        if k == 0 || points.is_empty() {
            return;
        }
        let k = k.min(points.len());
        self.search(points, 1, query, k, &mut scratch.heap);
        out.extend(scratch.drain_sorted().iter().map(|e| Neighbor {
            pos: e.pos,
            dist: e.sq.sqrt(),
        }));
    }

    fn search(
        &self,
        points: &FeatureMatrix,
        node_id: u32,
        query: &[f64],
        k: usize,
        heap: &mut BinaryHeap<Entry>,
    ) {
        let node = &self.nodes[node_id as usize];
        if node.dim == usize::MAX {
            // Batched contiguous leaf scan: the *same* normalized squared
            // distances the brute scan computes — scores and tie-breaks
            // match it bitwise.
            let m = query.len();
            let (start, end) = (node.start as usize, node.end as usize);
            scan_rows_perm(
                heap,
                k,
                query,
                &self.gathered[start * m..end * m],
                &self.idx[start..end],
            );
            return;
        }
        let diff = query[node.dim] - node.split;
        let (near, far) = if diff <= 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        self.search(points, near, query, k, heap);
        // Prune the far side when the splitting plane is already beyond the
        // current worst distance (or keep descending while not yet full).
        // `diff²/|F|` lower-bounds the normalized distance to anything
        // across the plane.
        let worst = heap.peek().map(|e| e.sq).unwrap_or(f64::INFINITY);
        let plane_sq = diff * diff / points.n_features() as f64;
        if heap.len() < k || plane_sq <= worst {
            self.search(points, far, query, k, heap);
        }
    }
}

/// A balanced KD-tree that **owns** its [`FeatureMatrix`].
///
/// Because the tree owns the points, it is a plain storable value
/// (`Send + Sync`): fitted models hold one and serve concurrent queries
/// against it for the model's whole lifetime. Build once offline, query
/// millions of times online.
pub struct KdTree {
    points: FeatureMatrix,
    tree: TreeNodes,
    /// Positions `0..indexed_len` are covered by `tree`; positions from
    /// `indexed_len` up are the **pending buffer** — appended points not
    /// yet folded into the structure, scanned linearly at query time.
    indexed_len: usize,
}

impl KdTree {
    /// Builds a tree over all points of `points`, taking ownership.
    pub fn build(points: FeatureMatrix) -> Self {
        let tree = TreeNodes::build(&points);
        let indexed_len = points.len();
        Self {
            points,
            tree,
            indexed_len,
        }
    }

    /// The owned point matrix (indexed prefix plus pending tail).
    pub fn points(&self) -> &FeatureMatrix {
        &self.points
    }

    /// Number of points covered by the tree structure (the rest are
    /// pending appends, scanned linearly).
    pub fn indexed_len(&self) -> usize {
        self.indexed_len
    }

    /// Number of appended points awaiting a [`KdTree::rebuild`].
    pub fn pending_len(&self) -> usize {
        self.points.len() - self.indexed_len
    }

    /// Appends one point to the pending buffer (streaming ingestion).
    /// Queries stay exact — [`KdTree::knn_with`] unions the tree search
    /// with a linear scan of the pending tail — so when and whether a
    /// rebuild happens can never change an answer, only latency.
    pub fn append(&mut self, point: &[f64], row_id: u32) {
        self.points.push(point, row_id);
    }

    /// Folds the pending buffer into the tree by rebuilding the structure
    /// over all points. Results are identical before and after.
    pub fn rebuild(&mut self) {
        self.tree = TreeNodes::build(&self.points);
        self.indexed_len = self.points.len();
    }

    /// The flattened tree structure (crate-internal: the neighbor-orders
    /// build queries it against the owned matrix directly).
    pub(crate) fn nodes(&self) -> &TreeNodes {
        &self.tree
    }

    /// The k nearest points to `query`, ascending by `(distance, position)`
    /// — bit-identical ordering and values to [`FeatureMatrix::knn`].
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// kNN lists for a batch of query rows, fanned out on `pool` — the
    /// tree analog of [`FeatureMatrix::knn_batch`]. The tree is
    /// `Send + Sync`, so workers share one index; results are in query
    /// order and identical for every worker count.
    pub fn knn_batch(
        &self,
        pool: &iim_exec::Pool,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        pool.parallel_map_indexed(queries.len(), |i| self.knn(&queries[i], k))
    }

    /// [`KdTree::knn`] into a reusable output buffer.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        let mut scratch = KnnScratch::new();
        self.knn_with(query, k, &mut scratch, out);
    }

    /// [`KdTree::knn_into`] with caller-owned selection scratch — no
    /// allocation at steady state.
    ///
    /// Tree search over the indexed prefix, then an exact linear scan of
    /// the pending tail into the **same** `(squared distance, position)`
    /// heap — the union selection is bit-identical to a brute scan over
    /// all points, so appends never perturb tie-breaks.
    pub fn knn_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        scratch.heap.clear();
        if k == 0 || self.points.is_empty() {
            return;
        }
        let k = k.min(self.points.len());
        // An initially-empty build has only the placeholder node, so the
        // tree search must be skipped until a rebuild covers real points.
        if self.indexed_len > 0 {
            self.tree
                .search(&self.points, 1, query, k, &mut scratch.heap);
        }
        let m = self.points.n_features();
        scan_rows_seq(
            &mut scratch.heap,
            k,
            query,
            &self.points.data()[self.indexed_len * m..],
            self.indexed_len as u32,
        );
        out.extend(scratch.drain_sorted().iter().map(|e| Neighbor {
            pos: e.pos,
            dist: e.sq.sqrt(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-10.0..10.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect::<Vec<u32>>(), data)
    }

    #[test]
    fn agrees_with_brute_force_bitwise() {
        for &(n, f) in &[(1usize, 1usize), (5, 2), (100, 1), (257, 3), (1000, 4)] {
            let fm = random_matrix(n, f, n as u64 * 31 + f as u64);
            let tree = KdTree::build(fm.clone());
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..20 {
                let q: Vec<f64> = (0..f).map(|_| rng.gen_range(-12.0..12.0)).collect();
                let k = rng.gen_range(1..=n.min(12));
                let a = fm.knn(&q, k);
                let b = tree.knn(&q, k);
                assert_eq!(a.len(), b.len(), "n={n} f={f} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos, "n={n} f={f} k={k}");
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "n={n} f={f} k={k}");
                }
            }
        }
    }

    #[test]
    fn duplicate_points_tie_break_on_position() {
        // 40 points, only 4 distinct locations: selection inside a tie
        // group must follow ascending position exactly like brute force.
        let mut data = Vec::new();
        for i in 0..40 {
            let v = (i % 4) as f64;
            data.extend_from_slice(&[v, -v]);
        }
        let fm = FeatureMatrix::from_dense(2, (0..40u32).collect::<Vec<u32>>(), data);
        let tree = KdTree::build(fm.clone());
        for k in [1usize, 3, 9, 11, 40, 60] {
            for q in [[0.0, 0.0], [2.0, -2.0], [1.4, -0.6]] {
                let a = fm.knn(&q, k);
                let b = tree.knn(&q, k);
                assert_eq!(a.len(), b.len(), "k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos, "k={k} q={q:?}");
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_and_k_zero() {
        let fm = FeatureMatrix::from_dense(2, vec![], vec![]);
        let tree = KdTree::build(fm);
        assert!(tree.knn(&[0.0, 0.0], 3).is_empty());
        let fm2 = random_matrix(10, 2, 1);
        let tree2 = KdTree::build(fm2);
        assert!(tree2.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn tree_is_send_sync_and_batch_matches_brute() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KdTree>();

        let fm = random_matrix(200, 3, 8);
        let tree = KdTree::build(fm.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let queries: Vec<Vec<f64>> = (0..80)
            .map(|_| (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect())
            .collect();
        let pool = iim_exec::Pool::new(4).with_serial_cutoff(1);
        let batch = tree.knn_batch(&pool, &queries, 7);
        for (q, nn) in queries.iter().zip(&batch) {
            let brute = fm.knn(q, 7);
            assert_eq!(nn.len(), brute.len());
            for (a, b) in nn.iter().zip(&brute) {
                assert_eq!(a.pos, b.pos);
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let fm = random_matrix(300, 2, 12);
        let tree = KdTree::build(fm.clone());
        let mut scratch = KnnScratch::new();
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let k = rng.gen_range(1..=20);
            tree.knn_with(&q, k, &mut scratch, &mut out);
            assert_eq!(out, fm.knn(&q, k));
        }
    }

    #[test]
    fn appended_points_match_brute_before_and_after_rebuild() {
        let fm = random_matrix(100, 2, 21);
        let mut tree = KdTree::build(fm.clone());
        let mut brute = fm;
        let mut rng = StdRng::seed_from_u64(33);
        for i in 0..50u32 {
            let p: Vec<f64> = (0..2).map(|_| rng.gen_range(-10.0..10.0)).collect();
            tree.append(&p, 100 + i);
            brute.push(&p, 100 + i);
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let a = brute.knn(&q, 9);
            let b = tree.knn(&q, 9);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.pos, y.pos, "append {i}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "append {i}");
            }
        }
        assert_eq!(tree.pending_len(), 50);
        assert_eq!(tree.indexed_len(), 100);
        tree.rebuild();
        assert_eq!(tree.pending_len(), 0);
        assert_eq!(tree.indexed_len(), 150);
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..20 {
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let a = brute.knn(&q, 9);
            let b = tree.knn(&q, 9);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.pos, y.pos);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
        }
    }

    #[test]
    fn append_into_empty_tree_is_searchable() {
        let mut tree = KdTree::build(FeatureMatrix::from_dense(1, vec![], vec![]));
        tree.append(&[3.0], 0);
        tree.append(&[1.0], 1);
        assert_eq!(tree.indexed_len(), 0);
        let nn = tree.knn(&[0.0], 1);
        assert_eq!(nn[0].pos, 1);
        tree.rebuild();
        assert_eq!(tree.knn(&[0.0], 1)[0].pos, 1);
    }

    #[test]
    fn exact_point_has_zero_distance() {
        let fm = random_matrix(64, 3, 5);
        let tree = KdTree::build(fm.clone());
        let q: Vec<f64> = fm.point(17).to_vec();
        let nn = tree.knn(&q, 1);
        assert_eq!(nn[0].pos, 17);
        assert_eq!(nn[0].dist, 0.0);
    }
}
