//! Nearest-neighbor search substrate for the `iim` workspace.
//!
//! Everything neighbor-shaped in the paper goes through `NN(t, F, k)`: the
//! kNN/kNNE/LOESS/ILLS baselines, IIM's learning neighbors (`ℓ`), IIM's
//! imputation neighbors (`k`), and the adaptive sweep which needs *all*
//! prefixes `NN(tᵢ, F, 1) ⊂ NN(tᵢ, F, 2) ⊂ …` at once.
//!
//! * [`dist`] — the paper's Formula 1 distance (Euclidean over the complete
//!   attributes, normalized by `|F|`).
//! * [`brute`] — exact top-k scans; the shape the paper's complexity
//!   analysis assumes ("advanced indexing ... is not the focus of this
//!   study").
//! * [`kdtree`] — an owned, storable KD-tree for the large-`n`
//!   experiments (SN has 100k tuples) and for online serving.
//! * [`vptree`] — a deterministic vantage-point tree whose metric-space
//!   pruning keeps paying past the KD-tree's dimensionality cliff.
//! * [`index`] — [`NeighborIndex`]: the brute/kd/vp selection every hot
//!   path (IIM serving, the kNN-family baselines, order construction)
//!   runs on, with bit-identical results across variants.
//! * [`orders`] — fully sorted per-tuple neighbor orders, precomputed once
//!   and shared across the adaptive sweep (§V-A1 "precompute once the
//!   nearest neighbors for all tuples").

pub mod brute;
pub mod dist;
pub mod heap;
pub mod index;
pub mod kdtree;
pub mod orders;
pub mod vptree;

pub use brute::{knn, knn_into, Neighbor};
pub use dist::{euclidean_f, euclidean_full, sq_dist_f, sq_dist_many, sq_dist_on};
pub use heap::KnnScratch;
pub use index::{auto_choice, auto_prefers_kdtree, rebuild_threshold, IndexChoice, NeighborIndex};
pub use kdtree::KdTree;
pub use orders::NeighborOrders;
pub use vptree::VpTree;
