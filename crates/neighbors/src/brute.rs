//! Exact brute-force kNN over a gathered feature matrix.

use crate::heap::{scan_rows_seq, KnnScratch};
use iim_bytes::{FloatSlice, U32Slice};
use iim_data::Relation;

/// One neighbor: a position plus its Formula-1 distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index into the candidate set (a [`FeatureMatrix`] position, which
    /// maps back to an original relation row via [`FeatureMatrix::row_id`]).
    pub pos: u32,
    /// Formula-1 distance.
    pub dist: f64,
}

/// Candidate tuples gathered onto their feature subset: a dense
/// `len x n_features` block plus the original row ids.
///
/// All neighbor search in the workspace runs against this shape so the
/// gather (and its missing-cell checks) happens exactly once per task.
///
/// The backing storage is view-or-owned ([`iim_bytes`]): a matrix decoded
/// through the validate-then-view snapshot path borrows its block straight
/// from the shared snapshot buffer; gathered/streamed matrices own theirs.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    f: usize,
    row_ids: U32Slice,
    data: FloatSlice,
}

impl FeatureMatrix {
    /// Gathers `attrs` from the given `rows` of `rel`.
    ///
    /// Panics (debug) if any gathered cell is missing — candidates must be
    /// complete on the feature attributes.
    pub fn gather(rel: &Relation, attrs: &[usize], rows: &[u32]) -> Self {
        assert!(!attrs.is_empty(), "feature set must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * attrs.len());
        for &r in rows {
            let row = rel.row_raw(r as usize);
            for &j in attrs {
                debug_assert!(!row[j].is_nan(), "candidate row {r} missing attr {j}");
                data.push(row[j]);
            }
        }
        Self {
            f: attrs.len(),
            row_ids: rows.to_vec().into(),
            data: data.into(),
        }
    }

    /// Builds directly from a dense row-major block (used by generators,
    /// tests, and the snapshot decode path — which passes views).
    pub fn from_dense(f: usize, row_ids: impl Into<U32Slice>, data: impl Into<FloatSlice>) -> Self {
        let (row_ids, data) = (row_ids.into(), data.into());
        assert_eq!(data.len(), row_ids.len() * f);
        Self { f, row_ids, data }
    }

    /// Appends one candidate point (streaming ingestion). The new point
    /// takes the next position, so an exact scan over the grown matrix is
    /// bitwise-equal to a rebuild with the point gathered last.
    /// (Copy-on-write: a view-backed matrix becomes owned on first push.)
    pub fn push(&mut self, point: &[f64], row_id: u32) {
        assert_eq!(point.len(), self.f, "appended point must have |F| features");
        self.row_ids.to_mut().push(row_id);
        self.data.to_mut().extend_from_slice(point);
    }

    /// Number of candidate points.
    pub fn len(&self) -> usize {
        self.row_ids.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    /// Feature dimensionality `|F|`.
    pub fn n_features(&self) -> usize {
        self.f
    }

    /// Feature vector of candidate `pos`.
    #[inline]
    pub fn point(&self, pos: usize) -> &[f64] {
        &self.data[pos * self.f..(pos + 1) * self.f]
    }

    /// Original relation row id of candidate `pos`.
    #[inline]
    pub fn row_id(&self, pos: usize) -> u32 {
        self.row_ids[pos]
    }

    /// All original row ids.
    pub fn row_ids(&self) -> &[u32] {
        &self.row_ids
    }

    /// The dense row-major backing buffer (`len × n_features`), exposed so
    /// the snapshot layer can serialize the matrix bit-exactly; inverse of
    /// [`FeatureMatrix::from_dense`].
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The k nearest candidates to `query` (a gathered feature vector),
    /// ascending by `(distance, position)`.
    ///
    /// `k` larger than the candidate count returns everything. Ties break
    /// deterministically on position so experiment runs are reproducible.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// kNN lists for a batch of query rows, fanned out on `pool`.
    ///
    /// Queries are independent, so the result is `queries.iter().map(|q|
    /// self.knn(q, k))` — in query order, identical for every worker count.
    /// The matrix is `Send + Sync`, so one gathered index serves any number
    /// of concurrent query batches.
    pub fn knn_batch(
        &self,
        pool: &iim_exec::Pool,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        pool.parallel_map_indexed(queries.len(), |i| self.knn(&queries[i], k))
    }

    /// [`FeatureMatrix::knn`] into a reusable buffer.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        let mut scratch = KnnScratch::new();
        self.knn_with(query, k, &mut scratch, out);
    }

    /// [`FeatureMatrix::knn_into`] with caller-owned selection scratch —
    /// the zero-allocation serving shape. Results are identical to
    /// [`FeatureMatrix::knn`] whatever state `scratch` arrives in.
    pub fn knn_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        scratch.heap.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        let k = k.min(self.len());
        // Batched scan over the contiguous block into a max-heap of the
        // best k so far, keyed by (dist, pos) descending.
        scan_rows_seq(&mut scratch.heap, k, query, &self.data, 0);
        out.extend(scratch.drain_sorted().iter().map(|e| Neighbor {
            pos: e.pos,
            dist: e.sq.sqrt(),
        }));
    }
}

/// Convenience: k nearest rows of `rel` (restricted to `candidates`,
/// measured on `attrs`) to the raw row `query_row`.
pub fn knn(
    rel: &Relation,
    attrs: &[usize],
    candidates: &[u32],
    query_row: &[f64],
    k: usize,
) -> Vec<Neighbor> {
    let fm = FeatureMatrix::gather(rel, attrs, candidates);
    let q: Vec<f64> = attrs.iter().map(|&j| query_row[j]).collect();
    let mut out = fm.knn(&q, k);
    // Convert positions back to relation row ids for the ad-hoc API.
    for n in &mut out {
        n.pos = fm.row_id(n.pos as usize);
    }
    out
}

/// Reusable-buffer variant of [`knn`] against a prebuilt matrix.
pub fn knn_into(fm: &FeatureMatrix, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
    fm.knn_into(query, k, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use iim_data::Schema;

    fn line(n: usize) -> FeatureMatrix {
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        FeatureMatrix::from_dense(1, (0..n as u32).collect::<Vec<u32>>(), data)
    }

    #[test]
    fn nearest_on_a_line() {
        let fm = line(10);
        let nn = fm.knn(&[4.2], 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].pos, 4);
        assert_eq!(nn[1].pos, 5);
        assert_eq!(nn[2].pos, 3);
        assert!((nn[0].dist - 0.2).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_candidates() {
        let fm = line(3);
        let nn = fm.knn(&[0.0], 10);
        assert_eq!(nn.len(), 3);
        // Ascending distances.
        assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn k_zero_and_empty() {
        let fm = line(3);
        assert!(fm.knn(&[0.0], 0).is_empty());
        let empty = FeatureMatrix::from_dense(1, vec![], vec![]);
        assert!(empty.knn(&[0.0], 2).is_empty());
    }

    #[test]
    fn ties_break_on_position() {
        // Points at ±1: equal distance from 0; lower position wins.
        let fm = FeatureMatrix::from_dense(1, vec![7, 9], vec![1.0, -1.0]);
        let nn = fm.knn(&[0.0], 1);
        assert_eq!(nn[0].pos, 0);
        assert_eq!(fm.row_id(nn[0].pos as usize), 7);
    }

    #[test]
    fn paper_fig1_imputation_neighbors() {
        // Example 1: NN(tx, {A1}, 3) = {t4, t5, t6} for tx[A1] = 5.
        let (rel, _) = iim_data::paper_fig1();
        let all: Vec<u32> = (0..8).collect();
        let nn = knn(&rel, &[0], &all, &[5.0, f64::NAN], 3);
        let mut ids: Vec<u32> = nn.iter().map(|n| n.pos).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4, 5]); // zero-based t4, t5, t6
    }

    #[test]
    fn gather_respects_attr_order() {
        let rel = Relation::from_rows(
            Schema::anonymous(3),
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        );
        let fm = FeatureMatrix::gather(&rel, &[2, 0], &[0, 1]);
        assert_eq!(fm.point(0), &[3.0, 1.0]);
        assert_eq!(fm.point(1), &[6.0, 4.0]);
        assert_eq!(fm.n_features(), 2);
        assert_eq!(fm.row_ids(), &[0, 1]);
    }

    #[test]
    fn index_is_send_sync_and_batch_matches_singles() {
        // The gathered index must be shareable across serving threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureMatrix>();

        let fm = line(40);
        let queries: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.37 - 5.0]).collect();
        let pool = iim_exec::Pool::new(4).with_serial_cutoff(1);
        let batch = fm.knn_batch(&pool, &queries, 5);
        assert_eq!(batch.len(), queries.len());
        for (q, nn) in queries.iter().zip(&batch) {
            assert_eq!(nn, &fm.knn(q, 5));
        }
    }

    #[test]
    fn matches_full_sort_reference() {
        // Cross-check heap selection against a naive full sort.
        let pts: Vec<f64> = (0..50)
            .map(|i| ((i * 37 % 50) as f64) * 0.73 - 10.0)
            .collect();
        let fm = FeatureMatrix::from_dense(1, (0..50u32).collect::<Vec<u32>>(), pts.clone());
        let q = [1.234];
        let got = fm.knn(&q, 7);
        let mut reference: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| ((p - q[0]).abs(), i as u32))
            .collect();
        reference.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.pos, r.1);
            assert!((g.dist - r.0).abs() < 1e-12);
        }
    }
}
