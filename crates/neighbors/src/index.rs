//! The storable neighbor-search index behind every hot path.
//!
//! The paper punts on search ("advanced indexing and searching techniques
//! could be applied, which is not the focus of this study", §V-A) — its
//! complexity analysis assumes the brute O(n·m) scan. This module is the
//! workspace's answer for serving at scale: one owned, `Send + Sync`
//! value that a fitted model stores at fit time and queries online,
//! choosing between the exact scan and a KD-tree.
//!
//! # Determinism contract
//!
//! Whichever variant serves a query, the result is **bit-identical**: both
//! paths score candidates with the same [`sq_dist_f`](crate::dist) call
//! and select the k best through the same `(squared distance, position)`
//! bounded heap, so ties — including duplicate points and rounding-induced
//! distance collisions — resolve identically. Auto-selection can therefore
//! never change an imputation, only its latency. This is property-tested
//! (duplicates, `k > n`, fitted-model serving) in the neighbors crate and
//! in `tests/index_parity.rs`.
//!
//! # Auto-selection heuristic
//!
//! [`IndexChoice::Auto`] picks the KD-tree when the candidate count
//! clears a dimensionality-dependent floor: [`KDTREE_MIN_POINTS`] points
//! up to 4 dimensions, [`KDTREE_MIN_POINTS_HIGH_DIM`] points up to
//! [`KDTREE_MAX_DIM`]. Below a few hundred points the brute scan fits in
//! cache and wins on constant factors; as dimensionality grows, KD
//! pruning weakens (each split plane bounds only `diff²/|F|` of the
//! normalized distance), so the tree needs more points before it pays —
//! and past [`KDTREE_MAX_DIM`] dimensions the scan's perfect locality
//! wins outright (the curse of dimensionality). The thresholds come from
//! `bench_results/BENCH_serving.json`. Override with
//! [`IndexChoice::Brute`] / [`IndexChoice::KdTree`] when profiling says
//! otherwise — results are identical either way.

use crate::brute::{FeatureMatrix, Neighbor};
use crate::heap::KnnScratch;
use crate::kdtree::KdTree;
use std::cell::Cell;

/// Minimum candidate count for [`IndexChoice::Auto`] to pick the KD-tree
/// at up to 4 dimensions.
pub const KDTREE_MIN_POINTS: usize = 512;

/// Minimum candidate count for [`IndexChoice::Auto`] to pick the KD-tree
/// at 5 to [`KDTREE_MAX_DIM`] dimensions (pruning weakens with
/// dimensionality, so the tree needs more points before it pays).
pub const KDTREE_MIN_POINTS_HIGH_DIM: usize = 4096;

/// Maximum feature dimensionality for [`IndexChoice::Auto`] to pick the
/// KD-tree.
pub const KDTREE_MAX_DIM: usize = 8;

/// Which neighbor index to build for a candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexChoice {
    /// Pick by `(n, m)`: KD-tree iff `n >= KDTREE_MIN_POINTS` and
    /// `m <= KDTREE_MAX_DIM` (see the module docs).
    #[default]
    Auto,
    /// Always the exact linear scan.
    Brute,
    /// Always the KD-tree.
    KdTree,
}

impl IndexChoice {
    /// Parses a CLI-style name: `auto`, `brute`, or `kdtree`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "brute" => Some(Self::Brute),
            "kdtree" | "kd-tree" | "kd" => Some(Self::KdTree),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Brute => "brute",
            Self::KdTree => "kdtree",
        }
    }
}

/// Pending-append count that triggers a KD-tree rebuild in
/// [`NeighborIndex::push`]: 1/16th of the indexed size, floored at 32 so
/// tiny trees don't rebuild on every append. Deterministic — a pure
/// function of how many points have been indexed — so two processes
/// absorbing the same sequence hold byte-identical state.
#[inline]
pub fn rebuild_threshold(indexed_len: usize) -> usize {
    (indexed_len / 16).max(32)
}

/// Whether [`IndexChoice::Auto`] selects the KD-tree for `n` points of
/// dimensionality `m` (see the module docs for the rationale).
#[inline]
pub fn auto_prefers_kdtree(n: usize, m: usize) -> bool {
    if m == 0 || m > KDTREE_MAX_DIM {
        return false;
    }
    if m <= 4 {
        n >= KDTREE_MIN_POINTS
    } else {
        n >= KDTREE_MIN_POINTS_HIGH_DIM
    }
}

/// An owned, storable nearest-neighbor index over a gathered
/// [`FeatureMatrix`] — the search substrate every hot path (IIM serving,
/// the kNN-family baselines, offline neighbor-order construction) runs on.
///
/// `Send + Sync`: one index fitted offline serves any number of concurrent
/// online query threads. See the [module docs](self) for the determinism
/// contract and the auto-selection heuristic.
pub enum NeighborIndex {
    /// Exact linear scan over the matrix.
    Brute(FeatureMatrix),
    /// Balanced KD-tree owning the matrix.
    KdTree(KdTree),
}

impl NeighborIndex {
    /// Builds the index named by `choice` over `points`.
    pub fn build(points: FeatureMatrix, choice: IndexChoice) -> Self {
        let kd = match choice {
            IndexChoice::Auto => auto_prefers_kdtree(points.len(), points.n_features()),
            IndexChoice::Brute => false,
            IndexChoice::KdTree => true,
        };
        if kd {
            Self::KdTree(KdTree::build(points))
        } else {
            Self::Brute(points)
        }
    }

    /// [`NeighborIndex::build`] with [`IndexChoice::Auto`].
    pub fn auto(points: FeatureMatrix) -> Self {
        Self::build(points, IndexChoice::Auto)
    }

    /// The backing candidate matrix (points, row ids, dimensionality).
    pub fn matrix(&self) -> &FeatureMatrix {
        match self {
            Self::Brute(fm) => fm,
            Self::KdTree(t) => t.points(),
        }
    }

    /// `"brute"` or `"kdtree"` — which variant was built.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Brute(_) => "brute",
            Self::KdTree(_) => "kdtree",
        }
    }

    /// Appends one point (streaming ingestion). Brute appends are exact by
    /// construction; the KD-tree buffers the point and queries union the
    /// tree with a linear scan of the buffer until
    /// [`rebuild_threshold`] pending points accumulate, at which point the
    /// structure is rebuilt over everything. The policy is a pure function
    /// of the point counts — deterministic across processes — and can
    /// never change an answer, only query latency.
    pub fn push(&mut self, point: &[f64], row_id: u32) {
        match self {
            Self::Brute(fm) => fm.push(point, row_id),
            Self::KdTree(t) => {
                t.append(point, row_id);
                if t.pending_len() >= rebuild_threshold(t.indexed_len()) {
                    t.rebuild();
                }
            }
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.matrix().len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.matrix().is_empty()
    }

    /// The k nearest points to `query`, ascending by
    /// `(distance, position)` — identical across variants.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// [`NeighborIndex::knn`] into a caller-owned output buffer; the
    /// selection heap comes from per-thread scratch, so steady-state
    /// serving does not allocate.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        iim_exec::with_tls_scratch(&THREAD_SCRATCH, |scratch| {
            self.knn_with(query, k, scratch, out)
        });
    }

    /// [`NeighborIndex::knn`] with fully caller-owned scratch *and*
    /// output — the explicit zero-allocation serving shape.
    pub fn knn_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        match self {
            Self::Brute(fm) => fm.knn_with(query, k, scratch, out),
            Self::KdTree(t) => t.knn_with(query, k, scratch, out),
        }
    }

    /// kNN lists for a batch of query rows, fanned out on `pool` with
    /// per-worker scratch; results are in query order and identical for
    /// every worker count.
    pub fn knn_batch(
        &self,
        pool: &iim_exec::Pool,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        pool.parallel_map_indexed(queries.len(), |i| {
            iim_exec::with_tls_scratch(&THREAD_SCRATCH, |scratch| {
                let mut out = Vec::new();
                self.knn_with(&queries[i], k, scratch, &mut out);
                out
            })
        })
    }
}

thread_local! {
    /// Per-thread selection scratch behind [`NeighborIndex::knn_into`]
    /// (see [`iim_exec::with_tls_scratch`] for the take/put contract).
    static THREAD_SCRATCH: Cell<KnnScratch> = Cell::new(KnnScratch::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-10.0..10.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect::<Vec<u32>>(), data)
    }

    #[test]
    fn auto_selection_heuristic() {
        assert!(!auto_prefers_kdtree(100, 2), "small n stays brute");
        assert!(auto_prefers_kdtree(KDTREE_MIN_POINTS, 2));
        assert!(auto_prefers_kdtree(100_000, KDTREE_MAX_DIM));
        assert!(
            !auto_prefers_kdtree(1000, KDTREE_MAX_DIM),
            "high dimensions need more points before the tree pays"
        );
        assert!(auto_prefers_kdtree(
            KDTREE_MIN_POINTS_HIGH_DIM,
            KDTREE_MAX_DIM
        ));
        assert!(
            !auto_prefers_kdtree(100_000, KDTREE_MAX_DIM + 1),
            "past the dimensionality cap the scan wins outright"
        );

        let small = NeighborIndex::auto(random_matrix(64, 2, 1));
        assert_eq!(small.kind(), "brute");
        let large = NeighborIndex::auto(random_matrix(600, 2, 2));
        assert_eq!(large.kind(), "kdtree");
    }

    #[test]
    fn choice_parse_round_trips() {
        for c in [IndexChoice::Auto, IndexChoice::Brute, IndexChoice::KdTree] {
            assert_eq!(IndexChoice::parse(c.name()), Some(c));
        }
        assert_eq!(IndexChoice::parse("KD-Tree"), Some(IndexChoice::KdTree));
        assert_eq!(IndexChoice::parse("annoy"), None);
        assert_eq!(IndexChoice::default(), IndexChoice::Auto);
    }

    #[test]
    fn variants_agree_bitwise_including_k_above_n() {
        let fm = random_matrix(137, 3, 9);
        let brute = NeighborIndex::build(fm.clone(), IndexChoice::Brute);
        let kd = NeighborIndex::build(fm.clone(), IndexChoice::KdTree);
        assert_eq!(brute.kind(), "brute");
        assert_eq!(kd.kind(), "kdtree");
        assert_eq!(brute.len(), kd.len());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect();
            for k in [1usize, 5, 137, 500] {
                let a = brute.knn(&q, k);
                let b = kd.knn(&q, k);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos);
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn index_is_send_sync_and_batch_matches_singles() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeighborIndex>();

        let fm = random_matrix(700, 2, 5);
        let index = NeighborIndex::auto(fm.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let queries: Vec<Vec<f64>> = (0..90)
            .map(|_| (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect())
            .collect();
        let pool = iim_exec::Pool::new(4).with_serial_cutoff(1);
        let batch = index.knn_batch(&pool, &queries, 6);
        for (q, nn) in queries.iter().zip(&batch) {
            assert_eq!(nn, &fm.knn(q, 6));
        }
    }

    #[test]
    fn streaming_pushes_stay_exact_across_rebuilds() {
        // 64 indexed points → rebuild_threshold = 32: the 100 pushes cross
        // at least one rebuild, and every intermediate state must answer
        // bit-identically to the brute scan over the same grown set.
        let fm = random_matrix(64, 2, 77);
        let mut kd = NeighborIndex::build(fm.clone(), IndexChoice::KdTree);
        let mut brute = NeighborIndex::build(fm, IndexChoice::Brute);
        let mut rng = StdRng::seed_from_u64(78);
        for i in 0..100u32 {
            let p: Vec<f64> = (0..2).map(|_| rng.gen_range(-10.0..10.0)).collect();
            kd.push(&p, 64 + i);
            brute.push(&p, 64 + i);
            assert_eq!(kd.len(), brute.len());
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let a = brute.knn(&q, 7);
            let b = kd.knn(&q, 7);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.pos, y.pos, "push {i}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "push {i}");
            }
        }
        assert_eq!(rebuild_threshold(0), 32);
        assert_eq!(rebuild_threshold(1024), 64);
    }

    #[test]
    fn empty_matrix_serves_empty_answers() {
        for choice in [IndexChoice::Brute, IndexChoice::KdTree] {
            let idx = NeighborIndex::build(FeatureMatrix::from_dense(2, vec![], vec![]), choice);
            assert!(idx.is_empty());
            assert!(idx.knn(&[0.0, 0.0], 4).is_empty());
        }
    }
}
