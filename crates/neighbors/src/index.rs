//! The storable neighbor-search index behind every hot path.
//!
//! The paper punts on search ("advanced indexing and searching techniques
//! could be applied, which is not the focus of this study", §V-A) — its
//! complexity analysis assumes the brute O(n·m) scan. This module is the
//! workspace's answer for serving at scale: one owned, `Send + Sync`
//! value that a fitted model stores at fit time and queries online,
//! choosing between the exact scan, a KD-tree, and a VP-tree.
//!
//! # Determinism contract
//!
//! Whichever variant serves a query, the result is **bit-identical**: all
//! paths score candidates with the same [`sq_dist_f`](crate::dist) kernel
//! (batched leaf/block scans return bitwise the scalar values) and select
//! the k best through the same `(squared distance, position)` bounded
//! heap, so ties — including duplicate points and rounding-induced
//! distance collisions — resolve identically. Auto-selection can therefore
//! never change an imputation, only its latency. This is property-tested
//! (duplicates, `k > n`, fitted-model serving, m ∈ 1..16) in the
//! neighbors crate and in `tests/index_parity.rs`.
//!
//! # Auto-selection heuristic
//!
//! [`IndexChoice::Auto`] picks by `(n, m)` using thresholds derived from
//! the committed `bench_results/BENCH_serving.json` grid — k=10 serving
//! over correlated (two-factor latent) candidates at
//! n ∈ {1k, 10k, 50k} × m ∈ {1, 4, 8, 12}, all three variants per cell,
//! re-run by `cargo run -p iim-bench --release --bin serving` whenever the
//! kernels or trees change. Headline cells from the committed grid
//! (µs/query, this box, 1 core):
//!
//! | n, m       | brute | kdtree | vptree |
//! |------------|-------|--------|--------|
//! | 1k,  4     | 5.7   | **1.4**| 1.9    |
//! | 10k, 8     | 53.1  | 4.3    | **3.6**|
//! | 50k, 8     | 300.8 | 13.7   | **9.3**|
//! | 50k, 12    | 479.3 | 24.6   | **13.7**|
//!
//! The derived rule, in order:
//!
//! * Below [`TREE_MIN_POINTS`] points (or at m = 0) every structure loses
//!   to the batched brute scan: the whole matrix fits in cache, the SIMD
//!   kernel streams it faster than any traversal branches, and streaming
//!   appends would keep paying tree rebuilds that never amortize.
//! * At m ≤ [`KDTREE_LOW_DIM`] the KD-tree wins every measured cell:
//!   axis-aligned splits prune hardest when each coordinate carries a
//!   large share of the normalized distance.
//! * For [`KDTREE_LOW_DIM`] < m ≤ [`TREE_MAX_DIM`] the two trees cross
//!   over on *n*: each kd split plane bounds only `diff²/|F|` of the
//!   distance, so kd pruning weakens as m grows, while the VP-tree's
//!   triangle-inequality pruning bounds the whole metric but pays more
//!   per visited node. Measured: kd ahead at n = 1k (m = 8: 1.8 vs 2.0;
//!   m = 12: 2.3 vs 3.8), vp ahead from n = 10k up (rows above). The
//!   crossover sits between; Auto switches to the VP-tree at
//!   [`VPTREE_MIN_POINTS`].
//! * Past [`TREE_MAX_DIM`] no cell was measured; extrapolating the kd
//!   decay and the iid worst case (where *no exact index* prunes — every
//!   metric ball contains almost everything), Auto stays with the scan's
//!   perfect locality.
//!
//! The grid's correlated workload is deliberate: real relations have low
//! intrinsic dimension (that's why imputation works at all), and that is
//! what metric pruning exploits. On truly iid high-dim data trees win
//! nothing — override with [`IndexChoice::Brute`] there, or with any
//! other variant when profiling says otherwise; results are identical
//! either way.

use crate::brute::{FeatureMatrix, Neighbor};
use crate::heap::KnnScratch;
use crate::kdtree::KdTree;
use crate::vptree::VpTree;
use std::cell::Cell;

/// Minimum candidate count for [`IndexChoice::Auto`] to pick any tree;
/// below this the batched brute scan wins (see the module docs for the
/// bench-grid derivation).
pub const TREE_MIN_POINTS: usize = 512;

/// Highest dimensionality at which the KD-tree won every measured cell;
/// above it the kd/vp choice crosses over on `n`.
pub const KDTREE_LOW_DIM: usize = 4;

/// Candidate count at which [`IndexChoice::Auto`] switches from the
/// KD-tree to the VP-tree for dimensionalities in
/// ([`KDTREE_LOW_DIM`], [`TREE_MAX_DIM`]] — between the measured kd-ahead
/// n = 1k cells and the vp-ahead n = 10k cells.
pub const VPTREE_MIN_POINTS: usize = 8192;

/// Maximum feature dimensionality for [`IndexChoice::Auto`] to pick a
/// tree at all; past this (unmeasured, curse-of-dimensionality regime)
/// the batched brute scan is the safe default.
pub const TREE_MAX_DIM: usize = 16;

/// Which neighbor index to build for a candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexChoice {
    /// Pick by `(n, m)` — see [`auto_choice`] and the module docs.
    #[default]
    Auto,
    /// Always the exact linear scan.
    Brute,
    /// Always the KD-tree.
    KdTree,
    /// Always the VP-tree.
    VpTree,
}

impl IndexChoice {
    /// Parses a CLI-style name: `auto`, `brute`, `kdtree`, or `vptree`
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(Self::Auto),
            "brute" => Some(Self::Brute),
            "kdtree" | "kd-tree" | "kd" => Some(Self::KdTree),
            "vptree" | "vp-tree" | "vp" => Some(Self::VpTree),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Brute => "brute",
            Self::KdTree => "kdtree",
            Self::VpTree => "vptree",
        }
    }
}

/// Pending-append count that triggers a tree rebuild in
/// [`NeighborIndex::push`]: 1/16th of the indexed size, floored at 32 so
/// tiny trees don't rebuild on every append. Deterministic — a pure
/// function of how many points have been indexed — so two processes
/// absorbing the same sequence hold byte-identical state.
#[inline]
pub fn rebuild_threshold(indexed_len: usize) -> usize {
    (indexed_len / 16).max(32)
}

/// The concrete index [`IndexChoice::Auto`] selects for `n` points of
/// dimensionality `m` (never returns `Auto`; see the module docs for the
/// derivation from the committed bench grid).
#[inline]
pub fn auto_choice(n: usize, m: usize) -> IndexChoice {
    if m == 0 || m > TREE_MAX_DIM || n < TREE_MIN_POINTS {
        return IndexChoice::Brute;
    }
    if m > KDTREE_LOW_DIM && n >= VPTREE_MIN_POINTS {
        return IndexChoice::VpTree;
    }
    IndexChoice::KdTree
}

/// Whether [`IndexChoice::Auto`] selects the KD-tree for `n` points of
/// dimensionality `m` (see [`auto_choice`] for the full three-way rule).
#[inline]
pub fn auto_prefers_kdtree(n: usize, m: usize) -> bool {
    auto_choice(n, m) == IndexChoice::KdTree
}

/// An owned, storable nearest-neighbor index over a gathered
/// [`FeatureMatrix`] — the search substrate every hot path (IIM serving,
/// the kNN-family baselines, offline neighbor-order construction) runs on.
///
/// `Send + Sync`: one index fitted offline serves any number of concurrent
/// online query threads. See the [module docs](self) for the determinism
/// contract and the auto-selection heuristic.
pub enum NeighborIndex {
    /// Exact linear scan over the matrix.
    Brute(FeatureMatrix),
    /// Balanced KD-tree owning the matrix.
    KdTree(KdTree),
    /// Deterministic vantage-point tree owning the matrix.
    VpTree(VpTree),
}

impl NeighborIndex {
    /// Builds the index named by `choice` over `points`.
    pub fn build(points: FeatureMatrix, choice: IndexChoice) -> Self {
        let choice = match choice {
            IndexChoice::Auto => auto_choice(points.len(), points.n_features()),
            c => c,
        };
        match choice {
            IndexChoice::KdTree => Self::KdTree(KdTree::build(points)),
            IndexChoice::VpTree => Self::VpTree(VpTree::build(points)),
            _ => Self::Brute(points),
        }
    }

    /// [`NeighborIndex::build`] with [`IndexChoice::Auto`].
    pub fn auto(points: FeatureMatrix) -> Self {
        Self::build(points, IndexChoice::Auto)
    }

    /// The backing candidate matrix (points, row ids, dimensionality).
    pub fn matrix(&self) -> &FeatureMatrix {
        match self {
            Self::Brute(fm) => fm,
            Self::KdTree(t) => t.points(),
            Self::VpTree(t) => t.points(),
        }
    }

    /// `"brute"`, `"kdtree"`, or `"vptree"` — which variant was built.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Brute(_) => "brute",
            Self::KdTree(_) => "kdtree",
            Self::VpTree(_) => "vptree",
        }
    }

    /// Appends one point (streaming ingestion). Brute appends are exact by
    /// construction; the trees buffer the point and queries union the
    /// structure with a linear scan of the buffer until
    /// [`rebuild_threshold`] pending points accumulate, at which point the
    /// structure is rebuilt over everything. The policy is a pure function
    /// of the point counts — deterministic across processes — and can
    /// never change an answer, only query latency.
    pub fn push(&mut self, point: &[f64], row_id: u32) {
        match self {
            Self::Brute(fm) => fm.push(point, row_id),
            Self::KdTree(t) => {
                t.append(point, row_id);
                if t.pending_len() >= rebuild_threshold(t.indexed_len()) {
                    t.rebuild();
                }
            }
            Self::VpTree(t) => {
                t.append(point, row_id);
                if t.pending_len() >= rebuild_threshold(t.indexed_len()) {
                    t.rebuild();
                }
            }
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.matrix().len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.matrix().is_empty()
    }

    /// The k nearest points to `query`, ascending by
    /// `(distance, position)` — identical across variants.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// [`NeighborIndex::knn`] into a caller-owned output buffer; the
    /// selection heap comes from per-thread scratch, so steady-state
    /// serving does not allocate.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        iim_exec::with_tls_scratch(&THREAD_SCRATCH, |scratch| {
            self.knn_with(query, k, scratch, out)
        });
    }

    /// [`NeighborIndex::knn`] with fully caller-owned scratch *and*
    /// output — the explicit zero-allocation serving shape.
    pub fn knn_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        match self {
            Self::Brute(fm) => fm.knn_with(query, k, scratch, out),
            Self::KdTree(t) => t.knn_with(query, k, scratch, out),
            Self::VpTree(t) => t.knn_with(query, k, scratch, out),
        }
    }

    /// kNN lists for a batch of query rows, fanned out on `pool` with
    /// per-worker scratch; results are in query order and identical for
    /// every worker count.
    pub fn knn_batch(
        &self,
        pool: &iim_exec::Pool,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        pool.parallel_map_indexed(queries.len(), |i| {
            iim_exec::with_tls_scratch(&THREAD_SCRATCH, |scratch| {
                let mut out = Vec::new();
                self.knn_with(&queries[i], k, scratch, &mut out);
                out
            })
        })
    }
}

thread_local! {
    /// Per-thread selection scratch behind [`NeighborIndex::knn_into`]
    /// (see [`iim_exec::with_tls_scratch`] for the take/put contract).
    static THREAD_SCRATCH: Cell<KnnScratch> = Cell::new(KnnScratch::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-10.0..10.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect::<Vec<u32>>(), data)
    }

    #[test]
    fn auto_selection_heuristic() {
        assert!(!auto_prefers_kdtree(100, 2), "small n stays brute");
        assert!(auto_prefers_kdtree(TREE_MIN_POINTS, 2));
        assert!(
            auto_prefers_kdtree(100_000, KDTREE_LOW_DIM),
            "kd wins every measured low-dim cell"
        );
        assert!(
            auto_prefers_kdtree(1000, 8),
            "kd stays ahead of vp at moderate n even past the low-dim band"
        );
        assert_eq!(
            auto_choice(VPTREE_MIN_POINTS, KDTREE_LOW_DIM + 1),
            IndexChoice::VpTree,
            "at scale past the low-dim band, metric pruning takes over"
        );
        assert_eq!(auto_choice(100_000, 8), IndexChoice::VpTree);
        assert_eq!(auto_choice(100_000, TREE_MAX_DIM), IndexChoice::VpTree);
        assert_eq!(
            auto_choice(100_000, TREE_MAX_DIM + 1),
            IndexChoice::Brute,
            "past the dimensionality cap the scan is the safe default"
        );
        assert_eq!(
            auto_choice(TREE_MIN_POINTS - 1, 12),
            IndexChoice::Brute,
            "tiny candidate sets never pay for a tree"
        );
        assert_eq!(auto_choice(100_000, 0), IndexChoice::Brute);

        let small = NeighborIndex::auto(random_matrix(64, 2, 1));
        assert_eq!(small.kind(), "brute");
        let large = NeighborIndex::auto(random_matrix(600, 2, 2));
        assert_eq!(large.kind(), "kdtree");
        let wide = NeighborIndex::auto(random_matrix(8192, 10, 3));
        assert_eq!(wide.kind(), "vptree");
    }

    #[test]
    fn choice_parse_round_trips() {
        for c in [
            IndexChoice::Auto,
            IndexChoice::Brute,
            IndexChoice::KdTree,
            IndexChoice::VpTree,
        ] {
            assert_eq!(IndexChoice::parse(c.name()), Some(c));
        }
        assert_eq!(IndexChoice::parse("KD-Tree"), Some(IndexChoice::KdTree));
        assert_eq!(IndexChoice::parse("VP-Tree"), Some(IndexChoice::VpTree));
        assert_eq!(IndexChoice::parse("vp"), Some(IndexChoice::VpTree));
        assert_eq!(IndexChoice::parse("annoy"), None);
        assert_eq!(IndexChoice::default(), IndexChoice::Auto);
    }

    #[test]
    fn variants_agree_bitwise_including_k_above_n() {
        let fm = random_matrix(137, 3, 9);
        let brute = NeighborIndex::build(fm.clone(), IndexChoice::Brute);
        let kd = NeighborIndex::build(fm.clone(), IndexChoice::KdTree);
        let vp = NeighborIndex::build(fm.clone(), IndexChoice::VpTree);
        assert_eq!(brute.kind(), "brute");
        assert_eq!(kd.kind(), "kdtree");
        assert_eq!(vp.kind(), "vptree");
        assert_eq!(brute.len(), kd.len());
        assert_eq!(brute.len(), vp.len());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect();
            for k in [1usize, 5, 137, 500] {
                let a = brute.knn(&q, k);
                for other in [&kd, &vp] {
                    let b = other.knn(&q, k);
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.pos, y.pos);
                        assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn index_is_send_sync_and_batch_matches_singles() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeighborIndex>();

        let fm = random_matrix(700, 2, 5);
        let index = NeighborIndex::auto(fm.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let queries: Vec<Vec<f64>> = (0..90)
            .map(|_| (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect())
            .collect();
        let pool = iim_exec::Pool::new(4).with_serial_cutoff(1);
        let batch = index.knn_batch(&pool, &queries, 6);
        for (q, nn) in queries.iter().zip(&batch) {
            assert_eq!(nn, &fm.knn(q, 6));
        }
    }

    #[test]
    fn streaming_pushes_stay_exact_across_rebuilds() {
        // 64 indexed points → rebuild_threshold = 32: the 100 pushes cross
        // at least one rebuild, and every intermediate state must answer
        // bit-identically to the brute scan over the same grown set.
        let fm = random_matrix(64, 2, 77);
        let mut kd = NeighborIndex::build(fm.clone(), IndexChoice::KdTree);
        let mut vp = NeighborIndex::build(fm.clone(), IndexChoice::VpTree);
        let mut brute = NeighborIndex::build(fm, IndexChoice::Brute);
        let mut rng = StdRng::seed_from_u64(78);
        for i in 0..100u32 {
            let p: Vec<f64> = (0..2).map(|_| rng.gen_range(-10.0..10.0)).collect();
            kd.push(&p, 64 + i);
            vp.push(&p, 64 + i);
            brute.push(&p, 64 + i);
            assert_eq!(kd.len(), brute.len());
            assert_eq!(vp.len(), brute.len());
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let a = brute.knn(&q, 7);
            for tree in [&kd, &vp] {
                let b = tree.knn(&q, 7);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos, "push {i}");
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "push {i}");
                }
            }
        }
        assert_eq!(rebuild_threshold(0), 32);
        assert_eq!(rebuild_threshold(1024), 64);
    }

    #[test]
    fn empty_matrix_serves_empty_answers() {
        for choice in [IndexChoice::Brute, IndexChoice::KdTree, IndexChoice::VpTree] {
            let idx = NeighborIndex::build(FeatureMatrix::from_dense(2, vec![], vec![]), choice);
            assert!(idx.is_empty());
            assert!(idx.knn(&[0.0, 0.0], 4).is_empty());
        }
    }
}
