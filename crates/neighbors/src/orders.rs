//! Precomputed sorted neighbor orders.
//!
//! Algorithm 3's complexity analysis (§V-A1) starts with "we can precompute
//! once the nearest neighbors for all tuples in r … and directly use them in
//! learning individual models for a certain ℓ". [`NeighborOrders`] is that
//! precomputation: for every candidate tuple, its `depth` nearest fellow
//! candidates in ascending distance order (self first, at distance zero) —
//! exactly the prefix property `NN(tᵢ, F, ℓ) ⊂ NN(tᵢ, F, ℓ+h)` (Formula 13)
//! the incremental sweep relies on.
//!
//! Construction writes each tuple's prefix straight into one flat
//! `n × depth` buffer ([`iim_exec::Pool::parallel_fill_rows`]) — no
//! per-row `Vec`s, no concatenation — and the general path routes through
//! the same KD-tree the serving index uses when
//! [`auto_prefers_kdtree`](crate::auto_prefers_kdtree) says so,
//! replacing the O(n²) all-pairs scan with n · O(log n + depth) queries.
//! Every path (line sweep, brute selection, tree queries; serial or
//! parallel) produces bitwise-identical orders.

use crate::brute::FeatureMatrix;
use crate::dist::sq_dist_many;
use crate::heap::KnnScratch;
use crate::index::{auto_choice, IndexChoice, NeighborIndex};
use crate::kdtree::TreeNodes;
use crate::vptree::VpNodes;
use crate::Neighbor;
use iim_exec::Pool;
use std::cell::Cell;

/// For each point of a [`FeatureMatrix`], its `depth` nearest points
/// (including itself, first), ascending by `(distance, position)`.
#[derive(Debug, Clone)]
pub struct NeighborOrders {
    n: usize,
    depth: usize,
    /// `n x depth` matrix of positions into the source matrix.
    order: Vec<u32>,
}

impl NeighborOrders {
    /// Computes orders of depth `depth` (clamped to the candidate count) on
    /// the process-default pool ([`iim_exec::global`]).
    ///
    /// Single-feature matrices use an O(n log n + n·depth) sorted-line
    /// sweep (the SN dataset is 100k tuples on one feature); otherwise a
    /// per-point top-k selection runs — through a KD-tree when the
    /// auto-selection heuristic picks one, else as a brute scan.
    pub fn build(fm: &FeatureMatrix, depth: usize) -> Self {
        Self::build_on(&iim_exec::global(), fm, depth)
    }

    /// [`NeighborOrders::build`] on an explicit pool.
    ///
    /// Each point's sorted prefix is computed independently and written
    /// into its own row of the flat buffer, so the result is identical for
    /// every worker count — and for every search path (see the module
    /// docs).
    pub fn build_on(pool: &Pool, fm: &FeatureMatrix, depth: usize) -> Self {
        let n = fm.len();
        let depth = depth.min(n);
        if n == 0 || depth == 0 {
            return Self {
                n,
                depth,
                order: Vec::new(),
            };
        }
        let mut order = vec![0u32; n * depth];
        if fm.n_features() == 1 {
            fill_line(pool, fm, depth, &mut order);
        } else {
            match auto_choice(n, fm.n_features()) {
                IndexChoice::KdTree => {
                    let tree = TreeNodes::build(fm);
                    fill_tree(pool, fm, &tree, depth, &mut order);
                }
                IndexChoice::VpTree => {
                    let tree = VpNodes::build(fm);
                    fill_vp(pool, fm, &tree, depth, &mut order);
                }
                _ => fill_brute(pool, fm, depth, &mut order),
            }
        }
        Self { n, depth, order }
    }

    /// Builds orders *through an existing serving index*, so the offline
    /// phase reuses the KD-tree the fitted model will store instead of
    /// scanning all pairs (or building a second tree).
    ///
    /// Output is bitwise-identical to [`NeighborOrders::build_on`] over
    /// the same matrix, whatever the index variant.
    pub fn build_from_index(pool: &Pool, index: &NeighborIndex, depth: usize) -> Self {
        let fm = index.matrix();
        let n = fm.len();
        let depth = depth.min(n);
        if n == 0 || depth == 0 {
            return Self {
                n,
                depth,
                order: Vec::new(),
            };
        }
        let mut order = vec![0u32; n * depth];
        if fm.n_features() == 1 {
            // The sorted-line sweep beats any index in one dimension.
            fill_line(pool, fm, depth, &mut order);
        } else {
            match index {
                NeighborIndex::Brute(fm) => fill_brute(pool, fm, depth, &mut order),
                NeighborIndex::KdTree(tree) => {
                    fill_tree(pool, tree.points(), tree.nodes(), depth, &mut order)
                }
                NeighborIndex::VpTree(tree) => {
                    fill_vp(pool, tree.points(), tree.nodes(), depth, &mut order)
                }
            }
        }
        Self { n, depth, order }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stored neighbor depth (the maximum usable ℓ).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The sorted neighbor prefix of point `i`: positions of its `depth`
    /// nearest points, self first.
    #[inline]
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.order[i * self.depth..(i + 1) * self.depth]
    }
}

/// One-dimensional path: sort positions by coordinate once; a point's
/// neighbors are a window around it, merged by two-pointer expansion.
fn fill_line(pool: &Pool, fm: &FeatureMatrix, depth: usize, order: &mut [u32]) {
    let n = fm.len();
    let mut by_x: Vec<u32> = (0..n as u32).collect();
    by_x.sort_by(|&a, &b| {
        fm.point(a as usize)[0]
            .total_cmp(&fm.point(b as usize)[0])
            .then(a.cmp(&b))
    });
    let mut rank_of = vec![0usize; n];
    for (rank, &p) in by_x.iter().enumerate() {
        rank_of[p as usize] = rank;
    }
    let coord = |pos: u32| fm.point(pos as usize)[0];
    pool.parallel_fill_rows(depth, order, |me, row| {
        let rank = rank_of[me];
        let x = coord(me as u32);
        row[0] = me as u32;
        let (mut lo, mut hi) = (rank, rank); // expanding window [lo, hi]
        for s in row.iter_mut().skip(1) {
            let left_d = if lo > 0 {
                (x - coord(by_x[lo - 1])).abs()
            } else {
                f64::INFINITY
            };
            let right_d = if hi + 1 < n {
                (coord(by_x[hi + 1]) - x).abs()
            } else {
                f64::INFINITY
            };
            // Tie-break mirrors the brute path: smaller position wins.
            let take_left = match left_d.partial_cmp(&right_d).expect("finite") {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => hi + 1 >= n || (lo > 0 && by_x[lo - 1] < by_x[hi + 1]),
            };
            if take_left {
                lo -= 1;
                *s = by_x[lo];
            } else {
                hi += 1;
                *s = by_x[hi];
            }
        }
    });
}

/// Brute path: per-point top-`depth` selection over all pairs. Selection
/// scratch is taken from per-thread storage, so no per-row result `Vec`
/// nor per-row scratch allocation survives steady state.
fn fill_brute(pool: &Pool, fm: &FeatureMatrix, depth: usize, order: &mut [u32]) {
    let n = fm.len();
    thread_local! {
        static SCRATCH: Cell<(Vec<f64>, Vec<(f64, u32)>)> = Cell::new(Default::default());
    }
    pool.parallel_fill_rows(depth, order, |i, row| {
        iim_exec::with_tls_scratch(&SCRATCH, |(dists, scratch)| {
            let q = fm.point(i);
            // Batched kernel over the whole contiguous block — bitwise the
            // scalar per-pair distances, but the scan autovectorizes.
            dists.resize(n, 0.0);
            sq_dist_many(q, fm.data(), dists);
            scratch.clear();
            scratch.extend(dists.iter().enumerate().map(|(p, &d)| (d, p as u32)));
            if depth < n {
                scratch.select_nth_unstable_by(depth - 1, |a, b| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
                });
                scratch.truncate(depth);
            }
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for (slot, (_, p)) in row.iter_mut().zip(scratch.iter()) {
                *slot = *p;
            }
        });
    });
}

/// Index path: per-point KD-tree query written straight into the row.
fn fill_tree(pool: &Pool, fm: &FeatureMatrix, tree: &TreeNodes, depth: usize, order: &mut [u32]) {
    thread_local! {
        static SCRATCH: Cell<(KnnScratch, Vec<Neighbor>)> = Cell::new(Default::default());
    }
    pool.parallel_fill_rows(depth, order, |i, row| {
        iim_exec::with_tls_scratch(&SCRATCH, |(knn, out)| {
            tree.knn_with(fm, fm.point(i), depth, knn, out);
            for (slot, nb) in row.iter_mut().zip(out.iter()) {
                *slot = nb.pos;
            }
        });
    });
}

/// Index path: per-point VP-tree query written straight into the row.
fn fill_vp(pool: &Pool, fm: &FeatureMatrix, tree: &VpNodes, depth: usize, order: &mut [u32]) {
    thread_local! {
        static SCRATCH: Cell<(KnnScratch, Vec<Neighbor>)> = Cell::new(Default::default());
    }
    pool.parallel_fill_rows(depth, order, |i, row| {
        iim_exec::with_tls_scratch(&SCRATCH, |(knn, out)| {
            tree.knn_with(fm.point(i), depth, knn, out);
            for (slot, nb) in row.iter_mut().zip(out.iter()) {
                *slot = nb.pos;
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexChoice;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-5.0..5.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect::<Vec<u32>>(), data)
    }

    #[test]
    fn self_is_always_first() {
        for f in [1usize, 3] {
            let fm = random_matrix(40, f, 11);
            let orders = NeighborOrders::build(&fm, 10);
            for i in 0..40 {
                assert_eq!(orders.neighbors_of(i)[0], i as u32, "f={f}");
            }
        }
    }

    #[test]
    fn matches_knn_prefixes() {
        for f in [1usize, 2, 4] {
            let fm = random_matrix(60, f, f as u64 * 7 + 1);
            let depth = 20;
            let orders = NeighborOrders::build(&fm, depth);
            for i in (0..60).step_by(7) {
                let expect = fm.knn(fm.point(i), depth);
                let got = orders.neighbors_of(i);
                for (g, e) in got.iter().zip(&expect) {
                    assert_eq!(*g, e.pos, "point {i}, f={f}");
                }
            }
        }
    }

    #[test]
    fn line_sweep_equals_general() {
        let fm = random_matrix(100, 1, 3);
        let a = NeighborOrders::build(&fm, 15);
        // Force the brute general path on the same 1-feature matrix.
        let mut order_b = vec![0u32; 100 * 15];
        fill_brute(&Pool::serial(), &fm, 15, &mut order_b);
        for i in 0..100 {
            assert_eq!(
                a.neighbors_of(i),
                &order_b[i * 15..(i + 1) * 15],
                "point {i}"
            );
        }
    }

    #[test]
    fn tree_path_equals_brute_path() {
        // Above the auto threshold the general build routes through the
        // tree; it must agree with the brute fill bitwise — including the
        // tie-breaks exercised by duplicated points.
        let mut fm = random_matrix(600, 3, 17);
        let dup: Vec<f64> = fm.point(5).to_vec();
        let mut data: Vec<f64> = Vec::new();
        for i in 0..600 {
            if i % 50 == 0 {
                data.extend_from_slice(&dup);
            } else {
                data.extend_from_slice(fm.point(i));
            }
        }
        fm = FeatureMatrix::from_dense(3, (0..600u32).collect::<Vec<u32>>(), data);

        let auto = NeighborOrders::build_on(&Pool::serial(), &fm, 12);
        let mut brute = vec![0u32; 600 * 12];
        fill_brute(&Pool::serial(), &fm, 12, &mut brute);
        for i in 0..600 {
            assert_eq!(auto.neighbors_of(i), &brute[i * 12..(i + 1) * 12], "{i}");
        }
    }

    #[test]
    fn build_from_index_matches_build_for_both_variants() {
        for f in [1usize, 3] {
            let fm = random_matrix(80, f, 23);
            let reference = NeighborOrders::build_on(&Pool::serial(), &fm, 9);
            for choice in [IndexChoice::Brute, IndexChoice::KdTree, IndexChoice::VpTree] {
                let index = NeighborIndex::build(fm.clone(), choice);
                let via = NeighborOrders::build_from_index(&Pool::serial(), &index, 9);
                for i in 0..80 {
                    assert_eq!(
                        reference.neighbors_of(i),
                        via.neighbors_of(i),
                        "f={f} {:?}",
                        choice
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Every construction path (line sweep, brute selection, tree
        // queries) is identical for every worker count.
        for (n, f) in [(90usize, 1usize), (90, 3), (700, 2)] {
            let fm = random_matrix(n, f, 21);
            let serial = NeighborOrders::build_on(&Pool::serial(), &fm, 12);
            let parallel = NeighborOrders::build_on(&Pool::new(4).with_serial_cutoff(1), &fm, 12);
            for i in 0..n {
                assert_eq!(
                    serial.neighbors_of(i),
                    parallel.neighbors_of(i),
                    "n={n} f={f}"
                );
            }
        }
    }

    #[test]
    fn depth_clamps_to_n() {
        let fm = random_matrix(5, 2, 9);
        let orders = NeighborOrders::build(&fm, 50);
        assert_eq!(orders.depth(), 5);
        assert_eq!(orders.neighbors_of(2).len(), 5);
    }

    #[test]
    fn fig1_learning_neighbors() {
        // Example 2: NN(t1, {A1}, 4) = {t1, t2, t3, t4}.
        let (rel, _) = iim_data::paper_fig1();
        let all: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &all);
        let orders = NeighborOrders::build(&fm, 4);
        assert_eq!(orders.neighbors_of(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn empty_matrix() {
        let fm = FeatureMatrix::from_dense(1, vec![], vec![]);
        let orders = NeighborOrders::build(&fm, 5);
        assert!(orders.is_empty());
        assert_eq!(orders.depth(), 0);
    }
}
