//! Precomputed sorted neighbor orders.
//!
//! Algorithm 3's complexity analysis (§V-A1) starts with "we can precompute
//! once the nearest neighbors for all tuples in r … and directly use them in
//! learning individual models for a certain ℓ". [`NeighborOrders`] is that
//! precomputation: for every candidate tuple, its `depth` nearest fellow
//! candidates in ascending distance order (self first, at distance zero) —
//! exactly the prefix property `NN(tᵢ, F, ℓ) ⊂ NN(tᵢ, F, ℓ+h)` (Formula 13)
//! the incremental sweep relies on.

use crate::brute::FeatureMatrix;
use crate::dist::sq_dist_f;
use iim_exec::Pool;

/// For each point of a [`FeatureMatrix`], its `depth` nearest points
/// (including itself, first), ascending by `(distance, position)`.
#[derive(Debug, Clone)]
pub struct NeighborOrders {
    n: usize,
    depth: usize,
    /// `n x depth` matrix of positions into the source matrix.
    order: Vec<u32>,
}

impl NeighborOrders {
    /// Computes orders of depth `depth` (clamped to the candidate count) on
    /// the process-default pool ([`iim_exec::global`]).
    ///
    /// Single-feature matrices use an O(n log n + n·depth) sorted-line
    /// sweep (the SN dataset is 100k tuples on one feature); otherwise a
    /// per-point selection runs in O(n² + n·depth·log depth).
    pub fn build(fm: &FeatureMatrix, depth: usize) -> Self {
        Self::build_on(&iim_exec::global(), fm, depth)
    }

    /// [`NeighborOrders::build`] on an explicit pool.
    ///
    /// Each point's sorted prefix is computed independently and placed at
    /// its own row, so the result is identical for every worker count.
    pub fn build_on(pool: &Pool, fm: &FeatureMatrix, depth: usize) -> Self {
        let n = fm.len();
        let depth = depth.min(n);
        if n == 0 || depth == 0 {
            return Self {
                n,
                depth,
                order: Vec::new(),
            };
        }
        let order = if fm.n_features() == 1 {
            Self::build_line(pool, fm, depth)
        } else {
            Self::build_general(pool, fm, depth)
        };
        Self { n, depth, order }
    }

    fn build_line(pool: &Pool, fm: &FeatureMatrix, depth: usize) -> Vec<u32> {
        let n = fm.len();
        // Sort positions by coordinate; a point's neighbors are a window
        // around it, merged by two-pointer expansion.
        let mut by_x: Vec<u32> = (0..n as u32).collect();
        by_x.sort_by(|&a, &b| {
            fm.point(a as usize)[0]
                .total_cmp(&fm.point(b as usize)[0])
                .then(a.cmp(&b))
        });
        let mut rank_of = vec![0usize; n];
        for (rank, &p) in by_x.iter().enumerate() {
            rank_of[p as usize] = rank;
        }
        let coord = |pos: u32| fm.point(pos as usize)[0];
        let rows = pool.parallel_map_indexed(n, |me| {
            let rank = rank_of[me];
            let x = coord(me as u32);
            let mut row = vec![0u32; depth];
            row[0] = me as u32;
            let (mut lo, mut hi) = (rank, rank); // expanding window [lo, hi]
            for s in row.iter_mut().skip(1) {
                let left_d = if lo > 0 {
                    (x - coord(by_x[lo - 1])).abs()
                } else {
                    f64::INFINITY
                };
                let right_d = if hi + 1 < n {
                    (coord(by_x[hi + 1]) - x).abs()
                } else {
                    f64::INFINITY
                };
                // Tie-break mirrors the brute path: smaller position wins.
                let take_left = match left_d.partial_cmp(&right_d).expect("finite") {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Greater => false,
                    std::cmp::Ordering::Equal => {
                        hi + 1 >= n || (lo > 0 && by_x[lo - 1] < by_x[hi + 1])
                    }
                };
                if take_left {
                    lo -= 1;
                    *s = by_x[lo];
                } else {
                    hi += 1;
                    *s = by_x[hi];
                }
            }
            row
        });
        rows.concat()
    }

    fn build_general(pool: &Pool, fm: &FeatureMatrix, depth: usize) -> Vec<u32> {
        let n = fm.len();
        let rows = pool.parallel_map_indexed(n, |i| {
            let q = fm.point(i);
            let mut scratch: Vec<(f64, u32)> = (0..n)
                .map(|p| (sq_dist_f(q, fm.point(p)), p as u32))
                .collect();
            if depth < n {
                scratch.select_nth_unstable_by(depth - 1, |a, b| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
                });
                scratch.truncate(depth);
            }
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            scratch.into_iter().map(|(_, p)| p).collect::<Vec<u32>>()
        });
        rows.concat()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Stored neighbor depth (the maximum usable ℓ).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The sorted neighbor prefix of point `i`: positions of its `depth`
    /// nearest points, self first.
    #[inline]
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.order[i * self.depth..(i + 1) * self.depth]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-5.0..5.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect(), data)
    }

    #[test]
    fn self_is_always_first() {
        for f in [1usize, 3] {
            let fm = random_matrix(40, f, 11);
            let orders = NeighborOrders::build(&fm, 10);
            for i in 0..40 {
                assert_eq!(orders.neighbors_of(i)[0], i as u32, "f={f}");
            }
        }
    }

    #[test]
    fn matches_knn_prefixes() {
        for f in [1usize, 2, 4] {
            let fm = random_matrix(60, f, f as u64 * 7 + 1);
            let depth = 20;
            let orders = NeighborOrders::build(&fm, depth);
            for i in (0..60).step_by(7) {
                let expect = fm.knn(fm.point(i), depth);
                let got = orders.neighbors_of(i);
                for (g, e) in got.iter().zip(&expect) {
                    assert_eq!(*g, e.pos, "point {i}, f={f}");
                }
            }
        }
    }

    #[test]
    fn line_sweep_equals_general() {
        let fm = random_matrix(100, 1, 3);
        let a = NeighborOrders::build(&fm, 15);
        // Force the general path by rebuilding through a 1-feature matrix
        // disguised via build_general.
        let order_b = NeighborOrders::build_general(&Pool::serial(), &fm, 15);
        for i in 0..100 {
            assert_eq!(
                a.neighbors_of(i),
                &order_b[i * 15..(i + 1) * 15],
                "point {i}"
            );
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        // Both construction paths (line sweep, general selection) are
        // identical for every worker count.
        for f in [1usize, 3] {
            let fm = random_matrix(90, f, 21);
            let serial = NeighborOrders::build_on(&Pool::serial(), &fm, 12);
            let parallel = NeighborOrders::build_on(&Pool::new(4).with_serial_cutoff(1), &fm, 12);
            for i in 0..90 {
                assert_eq!(serial.neighbors_of(i), parallel.neighbors_of(i), "f={f}");
            }
        }
    }

    #[test]
    fn depth_clamps_to_n() {
        let fm = random_matrix(5, 2, 9);
        let orders = NeighborOrders::build(&fm, 50);
        assert_eq!(orders.depth(), 5);
        assert_eq!(orders.neighbors_of(2).len(), 5);
    }

    #[test]
    fn fig1_learning_neighbors() {
        // Example 2: NN(t1, {A1}, 4) = {t1, t2, t3, t4}.
        let (rel, _) = iim_data::paper_fig1();
        let all: Vec<u32> = (0..8).collect();
        let fm = FeatureMatrix::gather(&rel, &[0], &all);
        let orders = NeighborOrders::build(&fm, 4);
        assert_eq!(orders.neighbors_of(0), &[0, 1, 2, 3]);
    }

    #[test]
    fn empty_matrix() {
        let fm = FeatureMatrix::from_dense(1, vec![], vec![]);
        let orders = NeighborOrders::build(&fm, 5);
        assert!(orders.is_empty());
        assert_eq!(orders.depth(), 0);
    }
}
