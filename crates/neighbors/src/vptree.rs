//! Deterministic vantage-point tree for the higher-dimensional workloads.
//!
//! KD-tree pruning weakens as dimensionality grows because each split
//! plane bounds only `diff²/|F|` of the normalized distance — one axis of
//! many. A VP-tree prunes in the *metric* itself: every internal node
//! holds a vantage point and the median Formula-1 radius `mu` of its
//! subtree, and the triangle inequality bounds the whole distance, not one
//! coordinate of it. On the correlated workloads the paper targets (where
//! data hugs a low-dimensional manifold inside a high-dimensional box)
//! metric balls adapt to the manifold while axis-aligned boxes cannot, so
//! the VP-tree keeps paying past the KD-tree's dimensionality cliff — see
//! `bench_results/BENCH_serving.json` for the committed grid.
//!
//! # Determinism
//!
//! Vantage points are chosen by a **seeded, committed rule**: within a
//! node's range, the point whose position hashes smallest under
//! `splitmix64` with the committed `VP_SEED`. The rule depends only on
//! the set of positions in the range — never on their arrangement — so a
//! rebuild over the same points yields the same tree. More importantly,
//! the choice can only steer *latency*: search scores candidates with the
//! same [`sq_dist_f`] kernel and selects through the same
//! `(squared distance, position)` bounded heap as brute/kd, and pruning is
//! strictly conservative (a small relative slack absorbs floating-point
//! rounding in the triangle-inequality bound, and equality never prunes),
//! so results are **bit-identical** to the brute scan — property-tested in
//! `tests/index_parity.rs`.
//!
//! Like [`KdTree`](crate::kdtree::KdTree), the tree owns its gathered
//! [`FeatureMatrix`] plus a copy of the points permuted into traversal
//! order, so leaf scans run the batched distance kernel over contiguous
//! rows.

use crate::brute::{FeatureMatrix, Neighbor};
use crate::dist::sq_dist_f;
use crate::heap::{push_bounded, scan_rows_perm, scan_rows_seq, Entry, KnnScratch};
use std::collections::BinaryHeap;

/// Leaf capacity: below this the batched contiguous scan beats further
/// ball splitting.
const LEAF: usize = 32;

/// Committed seed for the vantage-point rule (see the module docs).
const VP_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Relative slack absorbing floating-point rounding in the pruning bound:
/// ~100× the worst-case relative error of the distance kernel at |F| ≤ 64,
/// still far too small to cost measurable pruning power.
const PRUNE_SLACK: f64 = 1e-12;

/// SplitMix64 finalizer — the committed position hash behind the
/// vantage-point rule.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Offset (within `range`) of the position hashing smallest — the
/// committed vantage-point choice. Invariant to the arrangement of
/// `range`: positions are distinct, so the argmin is unique.
#[inline]
fn pick_vantage(range: &[u32]) -> usize {
    let mut best = 0usize;
    let mut best_h = u64::MAX;
    for (i, &p) in range.iter().enumerate() {
        let h = splitmix64(VP_SEED ^ p as u64);
        if h < best_h {
            best_h = h;
            best = i;
        }
    }
    best
}

struct Node {
    /// Median Formula-1 radius of the subtree's points around the vantage
    /// point (leaves: unused, 0).
    mu: f64,
    /// `idx` range covered by this node; for internal nodes the vantage
    /// point sits at `idx[start]` and the children split `start+1..end`.
    start: u32,
    end: u32,
    /// Children ids in `nodes` (0 = none; a leaf has neither).
    inside: u32,
    outside: u32,
}

/// The tree *structure* alone — flattened nodes, the point permutation,
/// and the points gathered into permutation order so every scan is
/// contiguous. Self-contained at query time; kept separate from the
/// owning [`VpTree`] so the neighbor-orders build can index a borrowed
/// matrix without cloning it.
pub(crate) struct VpNodes {
    nodes: Vec<Node>,
    idx: Vec<u32>,
    /// `idx.len() × m` row-major copy of the points in `idx` order.
    gathered: Vec<f64>,
}

impl VpNodes {
    /// Builds the structure over all points of `points`.
    pub(crate) fn build(points: &FeatureMatrix) -> Self {
        let n = points.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::with_capacity(2 * (n / LEAF + 1));
        // Placeholder so child index 0 can mean "none".
        nodes.push(Node {
            mu: 0.0,
            start: 0,
            end: 0,
            inside: 0,
            outside: 0,
        });
        let mut scratch: Vec<(f64, u32)> = Vec::new();
        if n > 0 {
            Self::build_rec(points, &mut nodes, &mut idx, 0, n, &mut scratch);
        }
        let m = points.n_features();
        let mut gathered = Vec::with_capacity(n * m);
        for &p in &idx {
            gathered.extend_from_slice(points.point(p as usize));
        }
        Self {
            nodes,
            idx,
            gathered,
        }
    }

    fn build_rec(
        points: &FeatureMatrix,
        nodes: &mut Vec<Node>,
        idx: &mut [u32],
        start: usize,
        end: usize,
        scratch: &mut Vec<(f64, u32)>,
    ) -> u32 {
        let node_id = nodes.len() as u32;
        if end - start <= LEAF {
            nodes.push(Node {
                mu: 0.0,
                start: start as u32,
                end: end as u32,
                inside: 0,
                outside: 0,
            });
            return node_id;
        }
        // Committed seeded vantage-point rule; the chosen point moves to
        // the front of the range and is scored at this node during search.
        let off = pick_vantage(&idx[start..end]);
        idx.swap(start, start + off);
        let vp = points.point(idx[start] as usize);
        scratch.clear();
        scratch.extend(
            idx[start + 1..end]
                .iter()
                .map(|&p| (sq_dist_f(vp, points.point(p as usize)), p)),
        );
        // Median split on (distance to vp, position): everything at or
        // below the median distance goes inside the ball, the rest outside.
        let half = scratch.len() / 2;
        scratch.select_nth_unstable_by(half, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mu = scratch[half].0.sqrt();
        for (slot, (_, p)) in idx[start + 1..end].iter_mut().zip(scratch.iter()) {
            *slot = *p;
        }
        nodes.push(Node {
            mu,
            start: start as u32,
            end: end as u32,
            inside: 0,
            outside: 0,
        });
        let mid = start + 1 + half + 1;
        let inside = Self::build_rec(points, nodes, idx, start + 1, mid, scratch);
        let outside = Self::build_rec(points, nodes, idx, mid, end, scratch);
        nodes[node_id as usize].inside = inside;
        nodes[node_id as usize].outside = outside;
        node_id
    }

    /// Top-k query into caller-owned scratch + output buffers.
    pub(crate) fn knn_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        scratch.heap.clear();
        if k == 0 || self.idx.is_empty() {
            return;
        }
        let k = k.min(self.idx.len());
        self.search(1, query, k, &mut scratch.heap);
        out.extend(scratch.drain_sorted().iter().map(|e| Neighbor {
            pos: e.pos,
            dist: e.sq.sqrt(),
        }));
    }

    pub(crate) fn search(
        &self,
        node_id: u32,
        query: &[f64],
        k: usize,
        heap: &mut BinaryHeap<Entry>,
    ) {
        let node = &self.nodes[node_id as usize];
        let (start, end) = (node.start as usize, node.end as usize);
        let m = query.len();
        if node.inside == 0 {
            // Leaf: batched contiguous scan; same kernel, same heap, so
            // bitwise what a brute scan of these rows would select.
            scan_rows_perm(
                heap,
                k,
                query,
                &self.gathered[start * m..end * m],
                &self.idx[start..end],
            );
            return;
        }
        // Score the vantage point itself with the shared kernel.
        let sq = sq_dist_f(query, &self.gathered[start * m..(start + 1) * m]);
        push_bounded(
            heap,
            k,
            Entry {
                sq,
                pos: self.idx[start],
            },
        );
        let dq = sq.sqrt();
        let mu = node.mu;
        // Visit the child whose region contains the query first — it
        // tightens `worst` fastest, maximizing pruning of the other side.
        let (near, far, near_is_inside) = if dq < mu {
            (node.inside, node.outside, true)
        } else {
            (node.outside, node.inside, false)
        };
        self.search(near, query, k, heap);
        if heap.len() < k {
            self.search(far, query, k, heap);
            return;
        }
        let worst_sq = heap.peek().map(|e| e.sq).unwrap_or(f64::INFINITY);
        // Triangle inequality: anything inside the ball is at least
        // `dq − mu` away, anything outside at least `mu − dq`. Shrink the
        // bound by a relative slack so rounding in the computed distances
        // can never prune a point that could still win (equality never
        // prunes) — pruning stays strictly conservative, results bitwise
        // equal to brute.
        let lb = if near_is_inside { mu - dq } else { dq - mu };
        let lb = lb - PRUNE_SLACK * (dq + mu);
        if !(lb > 0.0 && lb * lb * (1.0 - PRUNE_SLACK) > worst_sq) {
            self.search(far, query, k, heap);
        }
    }
}

/// A deterministic vantage-point tree that **owns** its [`FeatureMatrix`].
///
/// The metric-space sibling of [`KdTree`](crate::kdtree::KdTree): same
/// ownership story (a plain `Send + Sync` storable value fitted models
/// hold and serve concurrent queries from), same streaming-append contract
/// (pending buffer scanned exactly, periodic rebuild that can never change
/// an answer), same bit-identical results — different pruning geometry.
/// See the [module docs](self) for when it wins.
pub struct VpTree {
    points: FeatureMatrix,
    tree: VpNodes,
    /// Positions `0..indexed_len` are covered by `tree`; the rest are the
    /// pending buffer, scanned linearly at query time.
    indexed_len: usize,
}

impl VpTree {
    /// Builds a tree over all points of `points`, taking ownership.
    pub fn build(points: FeatureMatrix) -> Self {
        let tree = VpNodes::build(&points);
        let indexed_len = points.len();
        Self {
            points,
            tree,
            indexed_len,
        }
    }

    /// The owned point matrix (indexed prefix plus pending tail).
    pub fn points(&self) -> &FeatureMatrix {
        &self.points
    }

    /// Number of points covered by the tree structure (the rest are
    /// pending appends, scanned linearly).
    pub fn indexed_len(&self) -> usize {
        self.indexed_len
    }

    /// Number of appended points awaiting a [`VpTree::rebuild`].
    pub fn pending_len(&self) -> usize {
        self.points.len() - self.indexed_len
    }

    /// Appends one point to the pending buffer (streaming ingestion).
    /// Queries stay exact — [`VpTree::knn_with`] unions the tree search
    /// with a linear scan of the pending tail — so when and whether a
    /// rebuild happens can never change an answer, only latency.
    pub fn append(&mut self, point: &[f64], row_id: u32) {
        self.points.push(point, row_id);
    }

    /// Folds the pending buffer into the tree by rebuilding the structure
    /// over all points. Results are identical before and after.
    pub fn rebuild(&mut self) {
        self.tree = VpNodes::build(&self.points);
        self.indexed_len = self.points.len();
    }

    /// The flattened tree structure (crate-internal: the neighbor-orders
    /// build queries it directly).
    pub(crate) fn nodes(&self) -> &VpNodes {
        &self.tree
    }

    /// The k nearest points to `query`, ascending by `(distance, position)`
    /// — bit-identical ordering and values to [`FeatureMatrix::knn`].
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut out = Vec::new();
        self.knn_into(query, k, &mut out);
        out
    }

    /// [`VpTree::knn`] into a reusable output buffer.
    pub fn knn_into(&self, query: &[f64], k: usize, out: &mut Vec<Neighbor>) {
        let mut scratch = KnnScratch::new();
        self.knn_with(query, k, &mut scratch, out);
    }

    /// kNN lists for a batch of query rows, fanned out on `pool`; results
    /// are in query order and identical for every worker count.
    pub fn knn_batch(
        &self,
        pool: &iim_exec::Pool,
        queries: &[Vec<f64>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        pool.parallel_map_indexed(queries.len(), |i| self.knn(&queries[i], k))
    }

    /// [`VpTree::knn_into`] with caller-owned selection scratch — no
    /// allocation at steady state.
    ///
    /// Tree search over the indexed prefix, then an exact batched scan of
    /// the pending tail into the **same** `(squared distance, position)`
    /// heap — the union selection is bit-identical to a brute scan over
    /// all points, so appends never perturb tie-breaks.
    pub fn knn_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        scratch.heap.clear();
        if k == 0 || self.points.is_empty() {
            return;
        }
        let k = k.min(self.points.len());
        // An initially-empty build has only the placeholder node, so the
        // tree search must be skipped until a rebuild covers real points.
        if self.indexed_len > 0 {
            self.tree.search(1, query, k, &mut scratch.heap);
        }
        let m = self.points.n_features();
        scan_rows_seq(
            &mut scratch.heap,
            k,
            query,
            &self.points.data()[self.indexed_len * m..],
            self.indexed_len as u32,
        );
        out.extend(scratch.drain_sorted().iter().map(|e| Neighbor {
            pos: e.pos,
            dist: e.sq.sqrt(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, f: usize, seed: u64) -> FeatureMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * f).map(|_| rng.gen_range(-10.0..10.0)).collect();
        FeatureMatrix::from_dense(f, (0..n as u32).collect::<Vec<u32>>(), data)
    }

    #[test]
    fn agrees_with_brute_force_bitwise() {
        for &(n, f) in &[
            (1usize, 1usize),
            (5, 2),
            (100, 1),
            (257, 3),
            (1000, 4),
            (500, 12),
        ] {
            let fm = random_matrix(n, f, n as u64 * 31 + f as u64);
            let tree = VpTree::build(fm.clone());
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..20 {
                let q: Vec<f64> = (0..f).map(|_| rng.gen_range(-12.0..12.0)).collect();
                let k = rng.gen_range(1..=n.min(12));
                let a = fm.knn(&q, k);
                let b = tree.knn(&q, k);
                assert_eq!(a.len(), b.len(), "n={n} f={f} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos, "n={n} f={f} k={k}");
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "n={n} f={f} k={k}");
                }
            }
        }
    }

    #[test]
    fn duplicate_points_tie_break_on_position() {
        // 120 points, only 4 distinct locations: duplicates collapse every
        // node's ball boundary into one radius, and selection inside a tie
        // group must still follow ascending position exactly like brute.
        let mut data = Vec::new();
        for i in 0..120 {
            let v = (i % 4) as f64;
            data.extend_from_slice(&[v, -v]);
        }
        let fm = FeatureMatrix::from_dense(2, (0..120u32).collect::<Vec<u32>>(), data);
        let tree = VpTree::build(fm.clone());
        for k in [1usize, 3, 9, 40, 120, 200] {
            for q in [[0.0, 0.0], [2.0, -2.0], [1.4, -0.6]] {
                let a = fm.knn(&q, k);
                let b = tree.knn(&q, k);
                assert_eq!(a.len(), b.len(), "k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.pos, y.pos, "k={k} q={q:?}");
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_and_k_zero() {
        let tree = VpTree::build(FeatureMatrix::from_dense(2, vec![], vec![]));
        assert!(tree.knn(&[0.0, 0.0], 3).is_empty());
        let tree2 = VpTree::build(random_matrix(10, 2, 1));
        assert!(tree2.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn vantage_rule_is_arrangement_invariant() {
        let fwd: Vec<u32> = (0..200).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let a = fwd[pick_vantage(&fwd)];
        let b = rev[pick_vantage(&rev)];
        assert_eq!(a, b, "vantage choice must depend only on the set");
    }

    #[test]
    fn tree_is_send_sync_and_batch_matches_brute() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VpTree>();

        let fm = random_matrix(200, 3, 8);
        let tree = VpTree::build(fm.clone());
        let mut rng = StdRng::seed_from_u64(4);
        let queries: Vec<Vec<f64>> = (0..80)
            .map(|_| (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect())
            .collect();
        let pool = iim_exec::Pool::new(4).with_serial_cutoff(1);
        let batch = tree.knn_batch(&pool, &queries, 7);
        for (q, nn) in queries.iter().zip(&batch) {
            let brute = fm.knn(q, 7);
            assert_eq!(nn.len(), brute.len());
            for (a, b) in nn.iter().zip(&brute) {
                assert_eq!(a.pos, b.pos);
                assert_eq!(a.dist.to_bits(), b.dist.to_bits());
            }
        }
    }

    #[test]
    fn appended_points_match_brute_before_and_after_rebuild() {
        let fm = random_matrix(100, 2, 21);
        let mut tree = VpTree::build(fm.clone());
        let mut brute = fm;
        let mut rng = StdRng::seed_from_u64(33);
        for i in 0..50u32 {
            let p: Vec<f64> = (0..2).map(|_| rng.gen_range(-10.0..10.0)).collect();
            tree.append(&p, 100 + i);
            brute.push(&p, 100 + i);
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let a = brute.knn(&q, 9);
            let b = tree.knn(&q, 9);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.pos, y.pos, "append {i}");
                assert_eq!(x.dist.to_bits(), y.dist.to_bits(), "append {i}");
            }
        }
        assert_eq!(tree.pending_len(), 50);
        tree.rebuild();
        assert_eq!(tree.pending_len(), 0);
        assert_eq!(tree.indexed_len(), 150);
        let q = [0.5, -0.5];
        let a = brute.knn(&q, 9);
        let b = tree.knn(&q, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.dist.to_bits(), y.dist.to_bits());
        }
    }

    #[test]
    fn append_into_empty_tree_is_searchable() {
        let mut tree = VpTree::build(FeatureMatrix::from_dense(1, vec![], vec![]));
        tree.append(&[3.0], 0);
        tree.append(&[1.0], 1);
        assert_eq!(tree.indexed_len(), 0);
        let nn = tree.knn(&[0.0], 1);
        assert_eq!(nn[0].pos, 1);
        tree.rebuild();
        assert_eq!(tree.knn(&[0.0], 1)[0].pos, 1);
    }

    #[test]
    fn exact_point_has_zero_distance() {
        let fm = random_matrix(64, 3, 5);
        let tree = VpTree::build(fm.clone());
        let q: Vec<f64> = fm.point(17).to_vec();
        let nn = tree.knn(&q, 1);
        assert_eq!(nn[0].pos, 17);
        assert_eq!(nn[0].dist, 0.0);
    }

    #[test]
    fn rebuild_is_structurally_deterministic() {
        // Same points → same traversal permutation, twice over.
        let fm = random_matrix(300, 4, 7);
        let a = VpNodes::build(&fm);
        let b = VpNodes::build(&fm);
        assert_eq!(a.idx, b.idx);
    }
}
