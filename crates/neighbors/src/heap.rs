//! The bounded top-k heap shared by the brute scan and the KD-tree.
//!
//! Both search paths select the k smallest `(squared distance, position)`
//! pairs with the *same* comparison, so whichever path runs, the selected
//! set — and therefore every downstream imputation — is identical. The
//! heap buffer itself is reusable ([`KnnScratch`]) so steady-state serving
//! performs no per-query allocation.

use crate::dist::sq_dist_many;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One top-k heap entry: the Formula-1 *squared* distance plus the
/// candidate position. Ordered by `(sq, pos)` so ties break on position —
/// the workspace-wide determinism contract.
#[derive(PartialEq)]
pub(crate) struct Entry {
    pub sq: f64,
    pub pos: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sq.total_cmp(&other.sq).then(self.pos.cmp(&other.pos))
    }
}

/// Pushes `e` into a heap bounded at `k` entries, evicting the current
/// worst when `e` beats it on `(sq, pos)`.
#[inline]
pub(crate) fn push_bounded(heap: &mut BinaryHeap<Entry>, k: usize, e: Entry) {
    if heap.len() < k {
        heap.push(e);
    } else if let Some(worst) = heap.peek() {
        if (e.sq, e.pos) < (worst.sq, worst.pos) {
            heap.pop();
            heap.push(e);
        }
    }
}

/// Rows per [`sq_dist_many`] tile in the block-scan helpers: large enough
/// to amortize the selection pass, small enough that the distance buffer
/// lives on the stack.
pub(crate) const SCAN_TILE: usize = 64;

/// Scans a contiguous row-major `block` (rows of `query.len()` values),
/// pushing `(squared distance, base_pos + row)` entries into the bounded
/// heap. Distances come from the batched kernel in tiles, so the scan
/// autovectorizes; every pushed value is bitwise what the scalar
/// [`sq_dist_f`](crate::dist::sq_dist_f) would produce, and heap selection
/// under the `(sq, pos)` total order is insertion-order-independent — so
/// tiling can never change an answer.
#[inline]
pub(crate) fn scan_rows_seq(
    heap: &mut BinaryHeap<Entry>,
    k: usize,
    query: &[f64],
    block: &[f64],
    base_pos: u32,
) {
    let m = query.len();
    let mut buf = [0.0f64; SCAN_TILE];
    let mut pos = base_pos;
    for tile in block.chunks(SCAN_TILE * m) {
        let rows = tile.len() / m;
        sq_dist_many(query, tile, &mut buf[..rows]);
        for (i, &sq) in buf[..rows].iter().enumerate() {
            push_bounded(
                heap,
                k,
                Entry {
                    sq,
                    pos: pos + i as u32,
                },
            );
        }
        pos += rows as u32;
    }
}

/// [`scan_rows_seq`] for permuted storage: row `i` of `block` carries the
/// point at position `positions[i]` (the tree-leaf shape, where points are
/// gathered into traversal order and `positions` is the permutation back).
#[inline]
pub(crate) fn scan_rows_perm(
    heap: &mut BinaryHeap<Entry>,
    k: usize,
    query: &[f64],
    block: &[f64],
    positions: &[u32],
) {
    let m = query.len();
    debug_assert_eq!(block.len(), positions.len() * m);
    let mut buf = [0.0f64; SCAN_TILE];
    for (tile, tile_pos) in block.chunks(SCAN_TILE * m).zip(positions.chunks(SCAN_TILE)) {
        let rows = tile.len() / m;
        sq_dist_many(query, tile, &mut buf[..rows]);
        for (&sq, &pos) in buf[..rows].iter().zip(tile_pos) {
            push_bounded(heap, k, Entry { sq, pos });
        }
    }
}

/// Caller-owned scratch for repeated kNN queries.
///
/// Holds the top-k selection heap so steady-state queries reuse one
/// allocation. Scratch contents never influence results — a query run with
/// a fresh scratch and one run with a heavily reused scratch return
/// bit-identical neighbor lists.
#[derive(Default)]
pub struct KnnScratch {
    pub(crate) heap: BinaryHeap<Entry>,
    pub(crate) sorted: Vec<Entry>,
}

impl KnnScratch {
    /// Drains the selection heap into the ordering buffer, ascending by
    /// `(squared distance, position)` — the *same* key the bounded heap
    /// selects on, so selection and presentation can never disagree (a
    /// `sqrt` applied before ordering could collapse distinct squared
    /// distances into rounding ties).
    pub(crate) fn drain_sorted(&mut self) -> &[Entry] {
        self.sorted.clear();
        while let Some(e) = self.heap.pop() {
            self.sorted.push(e);
        }
        // The max-heap pops worst-first: reversing yields ascending order.
        self.sorted.reverse();
        &self.sorted
    }
}

impl KnnScratch {
    /// An empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_push_keeps_k_smallest_with_pos_ties() {
        let mut heap = BinaryHeap::new();
        for (sq, pos) in [(4.0, 0), (1.0, 5), (1.0, 2), (9.0, 1), (0.5, 7)] {
            push_bounded(&mut heap, 3, Entry { sq, pos });
        }
        let mut got: Vec<(f64, u32)> = heap.into_iter().map(|e| (e.sq, e.pos)).collect();
        got.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        assert_eq!(got, vec![(0.5, 7), (1.0, 2), (1.0, 5)]);
    }

    #[test]
    fn scratch_reuse_is_observationally_pure() {
        let mut scratch = KnnScratch::new();
        scratch.heap.push(Entry { sq: 1.0, pos: 0 });
        scratch.heap.clear();
        assert!(scratch.heap.is_empty());
    }
}
