//! Distances on complete attributes (Formula 1 of the paper):
//! `d(x, i) = sqrt( Σ_{A ∈ F} (x[A] − tᵢ[A])² / |F| )`.

/// Squared Formula-1 distance between two *gathered* feature vectors
/// (values already restricted to `F`, in the same order).
///
/// The `1/|F|` normalization matters when experiments vary `|F|`
/// (Figures 4–5): it keeps distances comparable across feature-set sizes.
#[inline]
pub fn sq_dist_f(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(!a.is_empty());
    let mut s = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s / a.len() as f64
}

/// Formula-1 distance between two gathered feature vectors.
#[inline]
pub fn euclidean_f(a: &[f64], b: &[f64]) -> f64 {
    sq_dist_f(a, b).sqrt()
}

/// Squared Formula-1 distance between two raw rows restricted to `attrs`.
///
/// Rows may be raw [`Relation`](iim_data::Relation) rows; the caller must
/// ensure the attributes in `attrs` are present (non-NaN) in both rows.
#[inline]
pub fn sq_dist_on(a: &[f64], b: &[f64], attrs: &[usize]) -> f64 {
    debug_assert!(!attrs.is_empty());
    let mut s = 0.0;
    for &j in attrs {
        let d = a[j] - b[j];
        debug_assert!(d.is_finite(), "distance over a missing cell");
        s += d * d;
    }
    s / attrs.len() as f64
}

/// Formula-1 distance over all attributes of two complete raw rows.
#[inline]
pub fn euclidean_full(a: &[f64], b: &[f64]) -> f64 {
    sq_dist_f(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_by_dimension() {
        // Same per-coordinate gap, different dimension: Formula 1 keeps the
        // distance constant.
        let d1 = euclidean_f(&[0.0], &[2.0]);
        let d2 = euclidean_f(&[0.0, 0.0], &[2.0, 2.0]);
        assert!((d1 - 2.0).abs() < 1e-12);
        assert!((d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subset_distance() {
        let a = [1.0, f64::NAN, 3.0];
        let b = [4.0, f64::NAN, 7.0];
        // attrs {0,2}: sq = (9 + 16)/2
        let d = sq_dist_on(&a, &b, &[0, 2]);
        assert!((d - 12.5).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [0.5, -1.0, 3.25];
        assert_eq!(euclidean_full(&a, &a), 0.0);
        assert_eq!(sq_dist_on(&a, &a, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = [1.0, 2.0];
        let b = [-3.0, 0.5];
        assert_eq!(euclidean_f(&a, &b), euclidean_f(&b, &a));
    }
}
