//! Distances on complete attributes (Formula 1 of the paper):
//! `d(x, i) = sqrt( Σ_{A ∈ F} (x[A] − tᵢ[A])² / |F| )`.
//!
//! # Kernel layout and the bitwise contract
//!
//! Every distance in the workspace flows through `sq_diff_sum`, a
//! blocked kernel that accumulates squared differences into **four
//! independent lanes** (chunks of 4, tail elements folded into lane
//! `i % 4`) and reduces them as `(s0 + s1) + (s2 + s3)`. Breaking the
//! serial dependency chain this way lets LLVM autovectorize the loop into
//! packed SIMD adds/multiplies (verified by `scripts/check_vectorization.sh`
//! and the `dist` criterion benches) while keeping the summation order a
//! *fixed, committed* choice: [`sq_dist_f`] (one pair) and
//! [`sq_dist_many`] (one query against a contiguous row-major block)
//! both call the same kernel per row, so a batched scan returns
//! **bit-identical** values to scalar calls — property-tested in
//! `tests/index_parity.rs`. Index variants (brute / kd / vp) may batch or
//! not batch freely without perturbing any tie-break.

/// Blocked sum of squared differences — the one committed summation order
/// (see the module docs). Four independent accumulator lanes over chunks
/// of 4; tail element `i` folds into lane `i % 4`; final reduction
/// `(s0 + s1) + (s2 + s3)`.
#[inline(always)]
fn sq_diff_sum(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for j in 0..4 {
            let d = xs[j] - ys[j];
            acc[j] += d * d;
        }
    }
    for (j, (x, y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        let d = x - y;
        acc[j] += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Squared Formula-1 distance between two *gathered* feature vectors
/// (values already restricted to `F`, in the same order).
///
/// The `1/|F|` normalization matters when experiments vary `|F|`
/// (Figures 4–5): it keeps distances comparable across feature-set sizes.
#[inline]
pub fn sq_dist_f(a: &[f64], b: &[f64]) -> f64 {
    debug_assert!(!a.is_empty());
    sq_diff_sum(a, b) / a.len() as f64
}

/// Squared Formula-1 distances from one `query` to every row of a
/// contiguous row-major `block` (`out.len()` rows of `query.len()`
/// values each).
///
/// This is the batched form of [`sq_dist_f`]: each output value is
/// **bitwise equal** to `sq_dist_f(query, row)` because both run the same
/// per-row kernel, but scanning a contiguous block keeps the loads
/// streaming and lets the whole scan autovectorize — the shape the brute
/// scan and the kd/vp leaf scans feed.
#[inline]
pub fn sq_dist_many(query: &[f64], block: &[f64], out: &mut [f64]) {
    let m = query.len();
    debug_assert!(m > 0);
    debug_assert_eq!(block.len(), out.len() * m);
    let inv_len = m as f64;
    for (o, row) in out.iter_mut().zip(block.chunks_exact(m)) {
        *o = sq_diff_sum(query, row) / inv_len;
    }
}

/// Formula-1 distance between two gathered feature vectors.
#[inline]
pub fn euclidean_f(a: &[f64], b: &[f64]) -> f64 {
    sq_dist_f(a, b).sqrt()
}

/// Squared Formula-1 distance between two raw rows restricted to `attrs`.
///
/// Rows may be raw [`Relation`](iim_data::Relation) rows; the caller must
/// ensure the attributes in `attrs` are present (non-NaN) in both rows.
/// Gathers through `attrs` with the same four-lane accumulation order as
/// [`sq_dist_f`], so a restricted-attr scan agrees bitwise with gathering
/// first and calling `sq_dist_f` on the result.
#[inline]
pub fn sq_dist_on(a: &[f64], b: &[f64], attrs: &[usize]) -> f64 {
    debug_assert!(!attrs.is_empty());
    let mut acc = [0.0f64; 4];
    let mut it = attrs.chunks_exact(4);
    for js in &mut it {
        for (lane, &j) in js.iter().enumerate() {
            let d = a[j] - b[j];
            debug_assert!(d.is_finite(), "distance over a missing cell");
            acc[lane] += d * d;
        }
    }
    for (lane, &j) in it.remainder().iter().enumerate() {
        let d = a[j] - b[j];
        debug_assert!(d.is_finite(), "distance over a missing cell");
        acc[lane] += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) / attrs.len() as f64
}

/// Formula-1 distance over all attributes of two complete raw rows.
#[inline]
pub fn euclidean_full(a: &[f64], b: &[f64]) -> f64 {
    sq_dist_f(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_by_dimension() {
        // Same per-coordinate gap, different dimension: Formula 1 keeps the
        // distance constant.
        let d1 = euclidean_f(&[0.0], &[2.0]);
        let d2 = euclidean_f(&[0.0, 0.0], &[2.0, 2.0]);
        assert!((d1 - 2.0).abs() < 1e-12);
        assert!((d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn subset_distance() {
        let a = [1.0, f64::NAN, 3.0];
        let b = [4.0, f64::NAN, 7.0];
        // attrs {0,2}: sq = (9 + 16)/2
        let d = sq_dist_on(&a, &b, &[0, 2]);
        assert!((d - 12.5).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [0.5, -1.0, 3.25];
        assert_eq!(euclidean_full(&a, &a), 0.0);
        assert_eq!(sq_dist_on(&a, &a, &[0, 1, 2]), 0.0);
    }

    #[test]
    fn symmetry() {
        let a = [1.0, 2.0];
        let b = [-3.0, 0.5];
        assert_eq!(euclidean_f(&a, &b), euclidean_f(&b, &a));
    }

    #[test]
    fn batched_matches_scalar_bitwise() {
        // 7-dim rows: exercises both the 4-lane body and the 3-wide tail.
        let m = 7;
        let query: Vec<f64> = (0..m).map(|j| (j as f64) * 0.37 - 1.0).collect();
        let block: Vec<f64> = (0..m * 13)
            .map(|i| ((i * 31 % 97) as f64) * 0.11 - 5.0)
            .collect();
        let mut out = vec![0.0; 13];
        sq_dist_many(&query, &block, &mut out);
        for (r, &got) in out.iter().enumerate() {
            let scalar = sq_dist_f(&query, &block[r * m..(r + 1) * m]);
            assert_eq!(got.to_bits(), scalar.to_bits(), "row {r}");
        }
    }

    #[test]
    fn restricted_attrs_match_gathered_bitwise() {
        let a: Vec<f64> = (0..10).map(|j| (j as f64) * 1.3 - 2.0).collect();
        let b: Vec<f64> = (0..10).map(|j| (j as f64) * -0.7 + 1.0).collect();
        for attrs in [
            vec![0usize],
            vec![2, 5],
            vec![0, 1, 2, 3, 4],
            vec![9, 0, 4, 7, 2, 8],
        ] {
            let ga: Vec<f64> = attrs.iter().map(|&j| a[j]).collect();
            let gb: Vec<f64> = attrs.iter().map(|&j| b[j]).collect();
            assert_eq!(
                sq_dist_on(&a, &b, &attrs).to_bits(),
                sq_dist_f(&ga, &gb).to_bits(),
                "{attrs:?}"
            );
        }
    }
}
