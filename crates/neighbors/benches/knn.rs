//! Criterion micro-benchmarks for the neighbor-search substrate: the
//! brute scan vs the owned KD-tree behind [`NeighborIndex`], plus the
//! flat-buffer neighbor-orders build the offline phase runs on.
//!
//! Every benchmark first asserts the two search paths agree bitwise on
//! the benched workload — the determinism contract is checked where the
//! numbers are produced.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iim_neighbors::brute::FeatureMatrix;
use iim_neighbors::{IndexChoice, KnnScratch, NeighborIndex, NeighborOrders};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, m: usize, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * m).map(|_| rng.gen_range(0.0..100.0)).collect();
    FeatureMatrix::from_dense(m, (0..n as u32).collect::<Vec<u32>>(), data)
}

fn bench_index_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_knn_k10");
    for &(n, m) in &[(10_000usize, 2usize), (10_000, 8), (50_000, 4)] {
        let fm = random_matrix(n, m, 7);
        let brute = NeighborIndex::build(fm.clone(), IndexChoice::Brute);
        let kd = NeighborIndex::build(fm, IndexChoice::KdTree);
        let mut rng = StdRng::seed_from_u64(13);
        let queries: Vec<Vec<f64>> = (0..64)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        // Bitwise parity on the benched workload before timing it.
        for q in &queries {
            let a = brute.knn(q, 10);
            let b = kd.knn(q, 10);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.pos, y.pos);
                assert_eq!(x.dist.to_bits(), y.dist.to_bits());
            }
        }
        for (name, index) in [("brute", &brute), ("kdtree", &kd)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("n{n}_m{m}")),
                index,
                |b, index| {
                    let mut scratch = KnnScratch::new();
                    let mut out = Vec::new();
                    b.iter(|| {
                        for q in &queries {
                            index.knn_with(q, 10, &mut scratch, &mut out);
                            black_box(&out);
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_orders_build(c: &mut Criterion) {
    // The offline precomputation: the flat-buffer build through the index
    // (auto = KD-tree at this size) vs the forced brute selection.
    let fm = random_matrix(4096, 4, 3);
    let mut group = c.benchmark_group("orders_build_n4096_m4_depth32");
    group.bench_function("auto_kdtree", |b| {
        b.iter(|| black_box(NeighborOrders::build(&fm, 32)));
    });
    group.bench_function("forced_brute", |b| {
        let brute = NeighborIndex::build(fm.clone(), IndexChoice::Brute);
        b.iter(|| {
            black_box(NeighborOrders::build_from_index(
                &iim_exec::global(),
                &brute,
                32,
            ))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index_knn, bench_orders_build
}
criterion_main!(benches);
