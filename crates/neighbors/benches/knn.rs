//! Criterion micro-benchmarks for the neighbor-search substrate: the
//! brute scan vs the owned KD-tree and VP-tree behind [`NeighborIndex`],
//! the blocked distance kernels, and the flat-buffer neighbor-orders
//! build the offline phase runs on.
//!
//! Every search benchmark first asserts the paths agree bitwise on the
//! benched workload — the determinism contract is checked where the
//! numbers are produced. Two data shapes are benched: iid-uniform (no
//! index can prune much past m≈4 — the curse of dimensionality) and a
//! two-factor latent model (intrinsic dimension ~2, the correlated shape
//! real relations have, where tree pruning keeps paying at higher m).
//!
//! CI smoke-runs this whole file with `cargo bench -- --quick`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use iim_neighbors::brute::FeatureMatrix;
use iim_neighbors::{
    sq_dist_f, sq_dist_many, IndexChoice, KnnScratch, NeighborIndex, NeighborOrders,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, m: usize, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..n * m).map(|_| rng.gen_range(0.0..100.0)).collect();
    FeatureMatrix::from_dense(m, (0..n as u32).collect::<Vec<u32>>(), data)
}

/// Two shared latent factors + per-feature noise: intrinsic dimension ~2
/// at any ambient m (same generator family as the `serving` bench bin).
fn latent_matrix(n: usize, m: usize, seed: u64) -> FeatureMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * m);
    for _ in 0..n {
        let t = rng.gen_range(0.0..100.0f64);
        let u = rng.gen_range(0.0..100.0f64);
        for j in 0..m {
            let a = 0.3 + 0.6 * ((j as f64 * 0.37).sin().abs());
            let b = 1.0 - a * 0.5;
            data.push(a * t + b * u + rng.gen_range(-2.0..2.0));
        }
    }
    FeatureMatrix::from_dense(m, (0..n as u32).collect::<Vec<u32>>(), data)
}

fn bench_knn_group(c: &mut Criterion, group_name: &str, cells: &[(usize, usize, FeatureMatrix)]) {
    let mut group = c.benchmark_group(group_name);
    for (n, m, fm) in cells {
        let (n, m) = (*n, *m);
        let brute = NeighborIndex::build(fm.clone(), IndexChoice::Brute);
        let kd = NeighborIndex::build(fm.clone(), IndexChoice::KdTree);
        let vp = NeighborIndex::build(fm.clone(), IndexChoice::VpTree);
        let mut rng = StdRng::seed_from_u64(13);
        let queries: Vec<Vec<f64>> = (0..64)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        // Bitwise parity on the benched workload before timing it.
        for q in &queries {
            let a = brute.knn(q, 10);
            for other in [kd.knn(q, 10), vp.knn(q, 10)] {
                for (x, y) in a.iter().zip(&other) {
                    assert_eq!(x.pos, y.pos);
                    assert_eq!(x.dist.to_bits(), y.dist.to_bits());
                }
            }
        }
        for (name, index) in [("brute", &brute), ("kdtree", &kd), ("vptree", &vp)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("n{n}_m{m}")),
                index,
                |b, index| {
                    let mut scratch = KnnScratch::new();
                    let mut out = Vec::new();
                    b.iter(|| {
                        for q in &queries {
                            index.knn_with(q, 10, &mut scratch, &mut out);
                            black_box(&out);
                        }
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_index_knn(c: &mut Criterion) {
    let uniform: Vec<(usize, usize, FeatureMatrix)> =
        [(10_000usize, 2usize), (10_000, 8), (50_000, 4)]
            .iter()
            .map(|&(n, m)| (n, m, random_matrix(n, m, 7)))
            .collect();
    bench_knn_group(c, "index_knn_k10_uniform", &uniform);

    let latent: Vec<(usize, usize, FeatureMatrix)> =
        [(10_000usize, 8usize), (50_000, 8), (10_000, 12)]
            .iter()
            .map(|&(n, m)| (n, m, latent_matrix(n, m, 7)))
            .collect();
    bench_knn_group(c, "index_knn_k10_latent", &latent);
}

fn bench_dist_kernels(c: &mut Criterion) {
    // One query against a contiguous 1024-row block — the shape the brute
    // scan and kd/vp leaf scans feed. `scalar` calls sq_dist_f per row;
    // `batched` hands the whole block to sq_dist_many. Both produce
    // bit-identical outputs (asserted); the delta is pure kernel/codegen.
    let mut group = c.benchmark_group("dist_kernels_1024rows");
    for &m in &[4usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(29);
        let query: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..100.0)).collect();
        let block: Vec<f64> = (0..1024 * m).map(|_| rng.gen_range(0.0..100.0)).collect();
        let mut out = vec![0.0; 1024];
        sq_dist_many(&query, &block, &mut out);
        for (r, &v) in out.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                sq_dist_f(&query, &block[r * m..(r + 1) * m]).to_bits()
            );
        }
        group.bench_function(BenchmarkId::new("scalar", format!("m{m}")), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for row in block.chunks_exact(m) {
                    acc += sq_dist_f(black_box(&query), row);
                }
                black_box(acc)
            });
        });
        group.bench_function(BenchmarkId::new("batched", format!("m{m}")), |b| {
            b.iter(|| {
                sq_dist_many(black_box(&query), black_box(&block), &mut out);
                black_box(&out);
            });
        });
    }
    group.finish();
}

fn bench_orders_build(c: &mut Criterion) {
    // The offline precomputation: the flat-buffer build through the index
    // (auto = KD-tree at this size) vs the forced brute selection.
    let fm = random_matrix(4096, 4, 3);
    let mut group = c.benchmark_group("orders_build_n4096_m4_depth32");
    group.bench_function("auto_kdtree", |b| {
        b.iter(|| black_box(NeighborOrders::build(&fm, 32)));
    });
    group.bench_function("forced_brute", |b| {
        let brute = NeighborIndex::build(fm.clone(), IndexChoice::Brute);
        b.iter(|| {
            black_box(NeighborOrders::build_from_index(
                &iim_exec::global(),
                &brute,
                32,
            ))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_index_knn, bench_dist_kernels, bench_orders_build
}
criterion_main!(benches);
