//! Non-inlined anchors around the distance kernels so
//! `scripts/check_vectorization.sh` has stable symbols to disassemble.
//!
//! The kernels themselves are `#[inline]`/`#[inline(always)]` — they never
//! get standalone symbols in a real build — so this example pins each one
//! inside an `#[inline(never)]` wrapper, letting objdump inspect exactly
//! the code shape the library inlines everywhere else.

use iim_neighbors::{sq_dist_f, sq_dist_many, sq_dist_on};

#[inline(never)]
pub fn probe_sq_dist_f(a: &[f64], b: &[f64]) -> f64 {
    sq_dist_f(a, b)
}

#[inline(never)]
pub fn probe_sq_dist_many(query: &[f64], block: &[f64], out: &mut [f64]) {
    sq_dist_many(query, block, out)
}

#[inline(never)]
pub fn probe_sq_dist_on(a: &[f64], b: &[f64], attrs: &[usize]) -> f64 {
    sq_dist_on(a, b, attrs)
}

fn main() {
    // Touch every probe with runtime-opaque data so none is optimized out.
    let n: usize = std::env::args().count() + 15; // ≥16, unknown at compile time
    let a: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let b: Vec<f64> = (0..n).map(|i| i as f64 * -0.25 + 1.0).collect();
    let block: Vec<f64> = (0..n * 8).map(|i| (i % 97) as f64).collect();
    let mut out = vec![0.0; 8];
    let attrs: Vec<usize> = (0..n).collect();
    let d1 = probe_sq_dist_f(&a, &b);
    probe_sq_dist_many(&a, &block, &mut out);
    let d2 = probe_sq_dist_on(&a, &b, &attrs);
    println!("{d1} {} {d2}", out.iter().sum::<f64>());
}
