//! `iim` — command-line imputation for CSV files.
//!
//! ```text
//! iim impute [--method IIM] [--k 10] [--seed 42] [--output out.csv] input.csv
//! iim profile input.csv          # R²_S / R²_H diagnostics per attribute
//! iim methods                    # list available methods
//! ```
//!
//! `impute` reads a headered numerical CSV (missing cells empty, `?`, or
//! `NA`), fills every imputable cell with the chosen method, and writes
//! the completed CSV (stdout by default). `profile` reports how sparse /
//! heterogeneous each attribute is, i.e. which method family the data
//! favours.

use iim::prelude::*;
use iim_baselines::all_baselines;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("impute") => impute(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("methods") => {
            println!("IIM (default)");
            for m in all_baselines(10, 0, FeatureSelection::AllOthers) {
                println!("{}", m.name());
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            eprintln!(
                "usage:\n  iim impute [--method NAME] [--k N] [--seed S] [--output FILE] INPUT.csv\
                 \n  iim profile INPUT.csv\n  iim methods"
            );
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; try --help");
            ExitCode::from(2)
        }
    }
}

struct Flags {
    method: String,
    k: usize,
    seed: u64,
    output: Option<String>,
    input: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        method: "IIM".into(),
        k: 10,
        seed: 42,
        output: None,
        input: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => f.method = it.next().ok_or("--method needs a value")?.clone(),
            "--k" => {
                f.k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--k needs a positive integer")?
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a u64")?
            }
            "--output" | "-o" => f.output = Some(it.next().ok_or("--output needs a path")?.clone()),
            path if !path.starts_with('-') => f.input = Some(path.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(f)
}

fn build_method(name: &str, k: usize, seed: u64) -> Result<Box<dyn Imputer>, String> {
    if name.eq_ignore_ascii_case("iim") {
        // Harness-default IIM: capped, stepped adaptive sweep.
        let cfg = IimConfig {
            k,
            learning: iim::core::Learning::Adaptive(AdaptiveConfig {
                step: 5,
                ell_max: Some(1000),
                validation_k: Some(k.max(10)),
                ..AdaptiveConfig::default()
            }),
            ..IimConfig::default()
        };
        return Ok(Box::new(PerAttributeImputer::new(Iim::new(cfg))));
    }
    all_baselines(k, seed, FeatureSelection::AllOthers)
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown method {name:?}; run `iim methods`"))
}

fn impute(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(input) = flags.input else {
        eprintln!("error: missing input file");
        return ExitCode::from(2);
    };
    let rel = match iim::data::csv::read_path(&input) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing = rel.missing_count();
    let method = match build_method(&flags.method, flags.k, flags.seed) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let filled = match method.impute(&rel) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("imputation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &flags.output {
        Some(path) => iim::data::csv::write_path(&filled, path),
        None => iim::data::csv::write(&filled, std::io::stdout().lock()),
    };
    if let Err(e) = result {
        eprintln!("error writing output: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{}: filled {} of {} missing cells in {} rows x {} attrs with {}",
        input,
        missing - filled.missing_count(),
        missing,
        filled.n_rows(),
        filled.arity(),
        method.name(),
    );
    ExitCode::SUCCESS
}

fn profile(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(input) = flags.input else {
        eprintln!("error: missing input file");
        return ExitCode::from(2);
    };
    let rel = match iim::data::csv::read_path(&input) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    use iim_data::inject::inject_attr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    println!(
        "{:<12} {:>8} {:>8}   interpretation",
        "attribute", "R2_S", "R2_H"
    );
    for j in 0..rel.arity() {
        let complete: Vec<u32> = (0..rel.n_rows())
            .filter(|&i| rel.row_complete(i))
            .map(|i| i as u32)
            .collect();
        if complete.len() < 30 {
            eprintln!("not enough complete rows to profile");
            return ExitCode::FAILURE;
        }
        let mut probe = rel.select_rows(&complete);
        let n_inject = (probe.n_rows() / 5).clamp(10, probe.n_rows() / 2);
        let truth = inject_attr(
            &mut probe,
            j,
            n_inject,
            &mut StdRng::seed_from_u64(flags.seed ^ j as u64),
        );
        match iim::baselines::diagnostics::data_profile(&probe, &truth, flags.k) {
            Ok(p) => {
                let hint = match (p.r2_sparsity < 0.5, p.r2_heterogeneity < 0.5) {
                    (true, false) => "sparse: prefer regression models (GLR/IIM)",
                    (false, true) => "heterogeneous: prefer local models (kNN/IIM)",
                    (true, true) => "hard: both sparse and heterogeneous (IIM)",
                    (false, false) => "benign: most methods work",
                };
                println!(
                    "{:<12} {:>8.2} {:>8.2}   {hint}",
                    rel.schema().name(j),
                    p.r2_sparsity,
                    p.r2_heterogeneity,
                );
            }
            Err(e) => println!("{:<12} profile failed: {e}", rel.schema().name(j)),
        }
    }
    ExitCode::SUCCESS
}
