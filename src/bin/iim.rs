//! `iim` — command-line imputation for CSV files.
//!
//! ```text
//! iim impute [--method IIM] [--k 10] [--seed 42] [--threads 4] [--output out.csv] input.csv
//! iim impute --fit-on train.csv queries.csv   # fit once, stream queries
//! iim impute --model model.iim queries.csv    # load a snapshot, stream queries
//! iim fit --save model.iim train.csv          # offline phase → snapshot on disk
//! iim serve model.iim --addr 127.0.0.1:7878   # HTTP daemon over a snapshot
//! iim serve --models-dir models/              # multi-tenant registry daemon
//! iim learn --model model.iim rows.csv        # absorb tuples, append delta records
//! iim registry list --models-dir models/      # tenant cards (version, absorbed)
//! iim registry stage --models-dir models/ prices model.iim  # install/replace
//! iim profile input.csv          # R²_S / R²_H diagnostics per attribute
//! iim methods                    # list available methods
//! iim bench run spec.toml        # spec-driven experiment runner
//! iim bench diff new.json baseline.json --noise-band 10  # perf gate
//! ```
//!
//! `impute` reads a headered numerical CSV (missing cells empty, `?`, or
//! `NA`), fills every imputable cell with the chosen method, and writes
//! the completed CSV (stdout by default). With `--fit-on TRAIN.csv` the
//! method runs its offline phase on the training file once and then
//! streams the input file's tuples through the fitted model one by one —
//! the learn-once / impute-millions split of the paper's §VI-B3. With
//! `--model MODEL.iim` the offline phase is skipped entirely: the fitted
//! model is loaded from an `iim fit --save` snapshot and serves the same
//! bits it would have served in the fitting process.
//! `fit` runs the offline phase once and persists it; `serve` turns a
//! snapshot into a long-lived HTTP daemon (`POST /impute`, `POST /learn`,
//! `GET /healthz`, `GET /info`) whose fills are byte-identical to
//! `iim impute` on the same queries — or, with `--models-dir`, serves a
//! whole registry of named snapshots (`/models/{name}/impute`, staged and
//! hot-swapped via `PUT /models/{name}` with zero dropped requests; see
//! `iim_serve::registry`). The daemon exits `0` on `SIGTERM`/ctrl-c after
//! draining in-flight work. `learn` absorbs complete tuples into
//! a snapshot offline — the model is updated incrementally (no refit) and
//! the tuples are appended to the snapshot as delta records, replayed on
//! the next load. `profile` reports how sparse / heterogeneous each
//! attribute is, i.e. which method family the data favours.

use iim::prelude::*;
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> String {
    "usage:\
     \n  iim impute [--method NAME] [--k N] [--seed S] [--threads T] [--index auto|brute|kdtree|vptree] \
     [--fit-on TRAIN.csv | --model MODEL.iim] [--output FILE] INPUT.csv\
     \n  iim fit --save MODEL.iim [--method NAME] [--k N] [--seed S] [--threads T] \
     [--index auto|brute|kdtree|vptree] TRAIN.csv\
     \n  iim serve MODEL.iim [--addr 127.0.0.1:7878] [--threads T] \
     [--checkpoint PATH] [--checkpoint-every N] [--max-connections N] [--max-queue N] \
     [--read-timeout SECS] [--write-timeout SECS]\
     \n  iim serve --models-dir DIR [--max-resident N] [--addr 127.0.0.1:7878] [--threads T] \
     [--max-connections N] [--max-queue N] [--read-timeout SECS] [--write-timeout SECS]\
     \n  iim registry list --models-dir DIR\
     \n  iim registry stage --models-dir DIR NAME SNAPSHOT.iim\
     \n  iim learn --model MODEL.iim ROWS.csv\
     \n  iim profile INPUT.csv\
     \n  iim methods\
     \n  iim bench run SPEC.toml [-o OUT.json] [overrides...]\
     \n  iim bench diff NEW.json BASELINE.json [--noise-band PCT]"
        .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("impute") => impute(&args[1..]),
        Some("fit") => fit(&args[1..]),
        Some("serve") => serve_daemon(&args[1..]),
        Some("registry") => registry_cmd(&args[1..]),
        Some("learn") => learn(&args[1..]),
        Some("profile") => profile(&args[1..]),
        // The experiment runner + regression gate; logic lives in
        // iim_bench::cli so it stays unit-testable.
        Some("bench") => ExitCode::from(iim_bench::cli::bench_main(&args[1..]) as u8),
        Some("methods") => {
            // One source of truth: the first lineup entry is the default.
            for (i, m) in iim::methods::lineup(10, 0).iter().enumerate() {
                if i == 0 {
                    println!("{} (default)", m.name());
                } else {
                    println!("{}", m.name());
                }
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; try --help");
            ExitCode::from(2)
        }
    }
}

struct Flags {
    method: String,
    k: usize,
    seed: u64,
    index: iim_core::IndexChoice,
    fit_on: Option<String>,
    model: Option<String>,
    save: Option<String>,
    addr: String,
    threads: usize,
    output: Option<String>,
    input: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: Option<usize>,
    models_dir: Option<String>,
    max_resident: usize,
    max_connections: usize,
    max_queue: usize,
    read_timeout: Duration,
    write_timeout: Duration,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        method: iim::methods::default_name(),
        k: 10,
        seed: 42,
        index: iim_core::IndexChoice::Auto,
        fit_on: None,
        model: None,
        save: None,
        addr: "127.0.0.1:7878".to_string(),
        threads: 0,
        output: None,
        input: None,
        checkpoint: None,
        checkpoint_every: None,
        models_dir: None,
        max_resident: 4,
        max_connections: 0,
        max_queue: iim_serve::DEFAULT_MAX_QUEUE,
        read_timeout: Duration::from_secs(60),
        write_timeout: Duration::from_secs(60),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => f.method = it.next().ok_or("--method needs a value")?.clone(),
            "--k" => {
                f.k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--k needs a positive integer")?
            }
            "--seed" => {
                f.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a u64")?
            }
            "--threads" => {
                let t: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t > 0)
                    .ok_or("--threads needs a positive integer")?;
                // Process-wide: every pool (learning, serving, baselines)
                // sees it; overrides IIM_THREADS for this invocation.
                iim_exec::set_default_threads(t);
                f.threads = t;
            }
            "--index" => {
                // Never changes the imputed values, only serving latency;
                // `auto` picks by training size and dimensionality.
                f.index = it
                    .next()
                    .and_then(|v| iim_core::IndexChoice::parse(v))
                    .ok_or("--index needs one of: auto, brute, kdtree, vptree")?
            }
            "--fit-on" => f.fit_on = Some(it.next().ok_or("--fit-on needs a path")?.clone()),
            "--model" => f.model = Some(it.next().ok_or("--model needs a path")?.clone()),
            "--save" => f.save = Some(it.next().ok_or("--save needs a path")?.clone()),
            "--addr" => f.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--checkpoint" => {
                f.checkpoint = Some(it.next().ok_or("--checkpoint needs a path")?.clone())
            }
            "--checkpoint-every" => {
                f.checkpoint_every = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--checkpoint-every needs a positive integer")?,
                )
            }
            "--models-dir" => {
                f.models_dir = Some(it.next().ok_or("--models-dir needs a path")?.clone())
            }
            "--max-resident" => {
                f.max_resident = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--max-resident needs a positive integer")?
            }
            "--max-connections" => {
                // 0 = unlimited; past the cap, accepts get 503 + Retry-After.
                f.max_connections = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-connections needs an integer (0 = unlimited)")?
            }
            "--max-queue" => {
                // 0 = unbounded; past the cap, requests get 503 + Retry-After.
                f.max_queue = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--max-queue needs an integer (0 = unbounded)")?
            }
            "--read-timeout" => {
                f.read_timeout = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_secs)
                    .ok_or("--read-timeout needs seconds (0 = no timeout)")?
            }
            "--write-timeout" => {
                f.write_timeout = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_secs)
                    .ok_or("--write-timeout needs seconds (0 = no timeout)")?
            }
            "--output" | "-o" => f.output = Some(it.next().ok_or("--output needs a path")?.clone()),
            path if !path.starts_with('-') => f.input = Some(path.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(f)
}

fn build_method(
    name: &str,
    k: usize,
    seed: u64,
    index: iim_core::IndexChoice,
) -> Result<Box<dyn Imputer>, String> {
    iim::methods::by_name_with(name, k, seed, index)
        .ok_or_else(|| format!("unknown method {name:?}; run `iim methods`"))
}

fn impute(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(input) = flags.input.clone() else {
        eprintln!("error: missing input file");
        return ExitCode::from(2);
    };
    if flags.model.is_some() && flags.fit_on.is_some() {
        eprintln!("error: --model and --fit-on are mutually exclusive");
        return ExitCode::from(2);
    }
    if let Some(model_path) = flags.model.clone() {
        // Snapshot serving: no offline phase in this process at all.
        let t0 = Instant::now();
        let (fitted, info) = match load_snapshot(&model_path) {
            Ok(pair) => pair,
            Err(code) => return code,
        };
        let offline = t0.elapsed();
        if let Some(at) = info.recovered_at {
            eprintln!(
                "warning: {model_path} had a torn delta tail (a crash mid-append); \
                 serving from the valid prefix at byte {at} (run `iim learn` to repair the file)"
            );
        }
        let provenance = format!("loaded {} from {model_path}", fitted.name());
        // The snapshot's recorded schema (when present) guards against a
        // query file with reordered or unrelated columns.
        let expect = (!info.schema.is_empty()).then_some(info.schema.as_slice());
        return stream_queries(
            &flags,
            &input,
            fitted.as_ref(),
            expect,
            offline,
            &provenance,
        );
    }
    let method = match build_method(&flags.method, flags.k, flags.seed, flags.index) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match &flags.fit_on {
        Some(train_path) => serve(&flags, &input, train_path, method.as_ref()),
        None => impute_batch_file(&flags, &input, method.as_ref()),
    }
}

/// Loads a snapshot plus its container metadata, mapping failures to the
/// CLI's data-error exit code.
fn load_snapshot(
    model_path: &str,
) -> Result<(Box<dyn FittedImputer>, iim_persist::SnapshotInfo), ExitCode> {
    let bytes = std::fs::read(model_path).map_err(|e| {
        eprintln!("error loading {model_path}: {e}");
        ExitCode::FAILURE
    })?;
    iim_persist::load_from_slice_with_info(&bytes).map_err(|e| {
        eprintln!("error loading {model_path}: {e}");
        ExitCode::FAILURE
    })
}

/// `iim fit --save MODEL.iim TRAIN.csv`: the offline phase once, persisted
/// as a deployment artifact (`iim-persist` snapshot).
fn fit(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(train_path) = flags.input.clone() else {
        eprintln!("error: missing training file");
        return ExitCode::from(2);
    };
    let Some(save_path) = flags.save.clone() else {
        eprintln!("error: fit needs --save MODEL.iim (where to put the snapshot)");
        return ExitCode::from(2);
    };
    let method = match build_method(&flags.method, flags.k, flags.seed, flags.index) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let train = match iim::data::csv::read_path(&train_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {train_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    // Fit every attribute: a later query may be missing any of them.
    let fitted = match method.fit(&train) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("offline phase failed on {train_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let offline = t0.elapsed();
    let t1 = Instant::now();
    // Record the training header in the snapshot so serving layers can
    // reject query files with reordered or unrelated columns.
    let bytes = match iim_persist::save_to_vec_with_schema(fitted.as_ref(), train.schema().names())
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("snapshot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Durable publish: temp file + fsync + rename, so a crash mid-save
    // never leaves a torn snapshot under the target name.
    if let Err(e) = iim_persist::save_bytes_path(&save_path, &bytes) {
        eprintln!("error writing {save_path}: {e}");
        return ExitCode::FAILURE;
    }
    let save_s = t1.elapsed();
    eprintln!(
        "{save_path}: {} fitted on {train_path} ({} rows x {} attrs) in {:.4}s; \
         snapshot {} bytes written in {:.4}s",
        fitted.name(),
        train.n_rows(),
        train.arity(),
        offline.as_secs_f64(),
        bytes.len(),
        save_s.as_secs_f64(),
    );
    ExitCode::SUCCESS
}

/// `iim serve MODEL.iim` / `iim serve --models-dir DIR`: a long-lived
/// HTTP daemon over one snapshot or a whole model registry. Exits `0` on
/// `SIGTERM`/ctrl-c after draining in-flight batches and flushing any
/// buffered checkpoint deltas (see `iim_serve::shutdown`).
fn serve_daemon(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let t0 = Instant::now();
    let (server, source) = if let Some(dir) = flags.models_dir.clone() {
        // Registry mode: models activate lazily, nothing loads up front.
        if flags.input.is_some() {
            eprintln!("error: --models-dir and a MODEL.iim are mutually exclusive");
            return ExitCode::from(2);
        }
        let registry = match iim_serve::Registry::open(iim_serve::RegistryConfig {
            dir: dir.clone().into(),
            max_resident: flags.max_resident,
            threads: flags.threads,
            max_queue: flags.max_queue,
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error opening registry {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cfg = iim_serve::ServeConfig {
            addr: flags.addr.clone(),
            threads: flags.threads,
            max_connections: flags.max_connections,
            max_queue: flags.max_queue,
            read_timeout: flags.read_timeout,
            write_timeout: flags.write_timeout,
            ..iim_serve::ServeConfig::default()
        };
        match iim_serve::Server::bind_registry(registry, &cfg) {
            Ok(s) => (s, dir),
            Err(e) => {
                eprintln!("error binding {}: {e}", cfg.addr);
                return ExitCode::FAILURE;
            }
        }
    } else {
        let Some(model_path) = flags.input.clone() else {
            eprintln!(
                "error: missing MODEL.iim or --models-dir DIR \
                 (produce snapshots with `iim fit --save`)"
            );
            return ExitCode::from(2);
        };
        let (fitted, info) = match load_snapshot(&model_path) {
            Ok(pair) => pair,
            Err(code) => return code,
        };
        if let Some(at) = info.recovered_at {
            eprintln!(
                "warning: {model_path} had a torn delta tail (a crash mid-append); \
                 recovered to the valid prefix at byte {at}"
            );
        }
        // Either checkpoint flag turns delta checkpointing on; the path
        // defaults to the snapshot being served, the cadence to every
        // absorb. A torn tail the load recovered past is truncated away
        // before the first new delta lands — but only when the checkpoint
        // targets the file we recovered from.
        let checkpoint =
            (flags.checkpoint.is_some() || flags.checkpoint_every.is_some()).then(|| {
                let path: std::path::PathBuf = flags
                    .checkpoint
                    .clone()
                    .unwrap_or_else(|| model_path.clone())
                    .into();
                let truncate_to = info
                    .recovered_at
                    .filter(|_| path == std::path::Path::new(&model_path));
                iim_serve::CheckpointConfig {
                    path,
                    every: flags.checkpoint_every.unwrap_or(1),
                    truncate_to,
                }
            });
        let cfg = iim_serve::ServeConfig {
            addr: flags.addr.clone(),
            threads: flags.threads,
            schema: info.schema,
            checkpoint,
            snapshot_version: info.version,
            max_connections: flags.max_connections,
            max_queue: flags.max_queue,
            read_timeout: flags.read_timeout,
            write_timeout: flags.write_timeout,
            recovered: usize::from(info.recovered_at.is_some()),
        };
        match iim_serve::Server::bind(fitted, &cfg) {
            Ok(s) => (s, model_path),
            Err(e) => {
                eprintln!("error binding {}: {e}", cfg.addr);
                return ExitCode::FAILURE;
            }
        }
    };
    let load_s = t0.elapsed();
    let addr = server
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| flags.addr.clone());
    let routes = if flags.models_dir.is_some() {
        "GET/PUT/DELETE /models..., POST /models/{name}/impute|learn"
    } else {
        "POST /impute, POST /learn"
    };
    eprintln!(
        "serving {} from {source} (ready in {:.4}s) on http://{addr} — \
         {routes}, GET /healthz, GET /info; SIGTERM/ctrl-c exits cleanly",
        server.describe(),
        load_s.as_secs_f64(),
    );
    // Park until SIGTERM/SIGINT, then drain: stop accepting, join the
    // accept thread, let batcher drops flush checkpoints — and exit 0 so
    // supervisors (and serve_e2e.sh) can tell a clean stop from a crash.
    iim_serve::shutdown::install();
    let handle = match server.spawn() {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error starting accept loop: {e}");
            return ExitCode::FAILURE;
        }
    };
    iim_serve::shutdown::wait();
    eprintln!("shutdown signal received; draining");
    handle.shutdown();
    ExitCode::SUCCESS
}

/// `iim registry list|stage`: offline admin verbs over a models
/// directory — the same staging path the daemon's `PUT /models/{name}`
/// uses (validate, temp file, atomic rename), minus the HTTP.
fn registry_cmd(args: &[String]) -> ExitCode {
    let Some(verb) = args.first().map(String::as_str) else {
        eprintln!("error: registry needs a verb: list | stage");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(dir) = flags.models_dir.clone() else {
        eprintln!("error: registry {verb} needs --models-dir DIR");
        return ExitCode::from(2);
    };
    let registry = match iim_serve::Registry::open(iim_serve::RegistryConfig {
        dir: dir.clone().into(),
        max_resident: flags.max_resident,
        threads: flags.threads,
        max_queue: flags.max_queue,
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error opening registry {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match verb {
        "list" => {
            let cards = match registry.list() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error listing {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{:<20} {:<10} {:>3} {:>9} {:>8}   schema",
                "name", "method", "v", "resident", "absorbed"
            );
            for c in cards {
                println!(
                    "{:<20} {:<10} {:>3} {:>9} {:>8}   {}",
                    c.name,
                    c.method,
                    c.snapshot_version,
                    if c.resident { "yes" } else { "no" },
                    c.absorbed,
                    c.schema.join(","),
                );
            }
            ExitCode::SUCCESS
        }
        "stage" => {
            // Positional args after the verb: NAME SNAPSHOT.iim — the
            // flag parser keeps the *last* positional as `input`, so pick
            // both out of the raw args.
            let positional: Vec<&String> = args[1..]
                .iter()
                .enumerate()
                .filter(|(i, a)| {
                    !a.starts_with('-')
                        && (*i == 0 || {
                            let prev = &args[1..][i - 1];
                            !matches!(
                                prev.as_str(),
                                "--models-dir"
                                    | "--max-resident"
                                    | "--threads"
                                    | "--addr"
                                    | "--method"
                                    | "--k"
                                    | "--seed"
                                    | "--index"
                                    | "--max-connections"
                                    | "--max-queue"
                                    | "--read-timeout"
                                    | "--write-timeout"
                            )
                        })
                })
                .map(|(_, a)| a)
                .collect();
            let [name, snapshot_path] = positional.as_slice() else {
                eprintln!("error: registry stage needs NAME SNAPSHOT.iim");
                return ExitCode::from(2);
            };
            let bytes = match std::fs::read(snapshot_path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error reading {snapshot_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match registry.stage(name, &bytes) {
                Ok(out) => {
                    eprintln!(
                        "{dir}/{name}.iim: staged {} ({} bytes)",
                        out.method,
                        bytes.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("error staging {name}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("unknown registry verb {other:?}; try list or stage");
            ExitCode::from(2)
        }
    }
}

/// `iim learn --model MODEL.iim ROWS.csv`: absorbs complete tuples into a
/// snapshot offline. The model is updated incrementally — no refit — and
/// the tuples are appended to the snapshot as delta records, so the next
/// load (CLI or daemon) replays them into the same state.
fn learn(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(rows_path) = flags.input.clone() else {
        eprintln!("error: missing ROWS.csv (the complete tuples to absorb)");
        return ExitCode::from(2);
    };
    let Some(model_path) = flags.model.clone() else {
        eprintln!("error: learn needs --model MODEL.iim (the snapshot to grow)");
        return ExitCode::from(2);
    };
    let (mut fitted, info) = match load_snapshot(&model_path) {
        Ok(pair) => pair,
        Err(code) => return code,
    };
    let rel = match iim::data::csv::read_path(&rows_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {rows_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !info.schema.is_empty() && rel.schema().names() != info.schema {
        eprintln!(
            "error: {rows_path} header {:?} does not match the model's schema {:?}",
            rel.schema().names(),
            info.schema
        );
        return ExitCode::FAILURE;
    }
    // Validate completeness up front: a partial failure mid-file would
    // leave the snapshot ahead of the caller's mental model.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(rel.n_rows());
    for i in 0..rel.n_rows() {
        let row = rel.row_raw(i);
        let mut complete = Vec::with_capacity(row.len());
        for (j, cell) in row.iter().enumerate() {
            if cell.is_nan() {
                eprintln!(
                    "error: {rows_path} line {}, column {}: learning rows must be complete",
                    i + 2,
                    j + 1
                );
                return ExitCode::FAILURE;
            }
            complete.push(*cell);
        }
        rows.push(complete);
    }
    let t0 = Instant::now();
    for (i, row) in rows.iter().enumerate() {
        if let Err(e) = fitted.absorb(row) {
            eprintln!("error absorbing {rows_path} line {}: {e}", i + 2);
            return ExitCode::FAILURE;
        }
    }
    let absorb_s = t0.elapsed();
    // A torn tail the load recovered past must be cut off before a new
    // record lands after it, or the damage would sit mid-file and turn
    // into a hard error on the next load.
    if let Some(at) = info.recovered_at {
        eprintln!(
            "warning: {model_path} had a torn delta tail (a crash mid-append); \
             truncating to the valid prefix at byte {at}"
        );
        if let Err(e) = iim_persist::truncate_deltas_path(&model_path, at) {
            eprintln!("error repairing {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = iim_persist::append_delta_path(&model_path, &rows) {
        eprintln!("error appending delta to {model_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{model_path}: {} absorbed {} tuples from {rows_path} in {:.4}s \
         ({} absorbed in total); delta record appended",
        fitted.name(),
        rows.len(),
        absorb_s.as_secs_f64(),
        fitted.absorbed(),
    );
    ExitCode::SUCCESS
}

/// The classic one-shot path: fit on the input itself, fill it, write it.
fn impute_batch_file(flags: &Flags, input: &str, method: &dyn Imputer) -> ExitCode {
    let rel = match iim::data::csv::read_path(input) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let missing = rel.missing_count();
    let filled = match method.impute(&rel) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("imputation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &flags.output {
        Some(path) => iim::data::csv::write_path(&filled, path),
        None => iim::data::csv::write(&filled, std::io::stdout().lock()),
    };
    if let Err(e) = result {
        eprintln!("error writing output: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{}: filled {} of {} missing cells in {} rows x {} attrs with {}",
        input,
        missing - filled.missing_count(),
        missing,
        filled.n_rows(),
        filled.arity(),
        method.name(),
    );
    ExitCode::SUCCESS
}

/// The serving path: offline phase on the training file once, then stream
/// the input file's tuples through the fitted model one at a time.
fn serve(flags: &Flags, input: &str, train_path: &str, method: &dyn Imputer) -> ExitCode {
    let train = match iim::data::csv::read_path(train_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {train_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    // Fit every attribute: a query may be missing any of them.
    let fitted = match method.fit(&train) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("offline phase failed on {train_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let offline = t0.elapsed();
    let provenance = format!(
        "fitted {} on {train_path} ({} rows)",
        method.name(),
        train.n_rows()
    );
    stream_queries(
        flags,
        input,
        fitted.as_ref(),
        Some(train.schema().names()),
        offline,
        &provenance,
    )
}

/// Streams the input file's tuples through a fitted model one at a time —
/// shared by `--fit-on` (fit in-process) and `--model` (snapshot loaded
/// from disk), so both paths produce byte-identical output for the same
/// fitted state.
fn stream_queries(
    flags: &Flags,
    input: &str,
    fitted: &dyn FittedImputer,
    expect_names: Option<&[String]>,
    offline: Duration,
    provenance: &str,
) -> ExitCode {
    let file = match std::fs::File::open(input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut lines = std::io::BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(h)) => h,
        _ => {
            eprintln!("error reading {input}: empty input: missing header");
            return ExitCode::FAILURE;
        }
    };
    let names = iim::data::csv::parse_header(&header);
    if let Some(expected) = expect_names {
        if names != expected {
            eprintln!("error: query header {names:?} does not match training header {expected:?}");
            return ExitCode::FAILURE;
        }
    }
    // A snapshot carries no schema, only the fitted arity.
    if names.len() != fitted.arity() {
        eprintln!(
            "error: query header has {} attributes but the model serves {}",
            names.len(),
            fitted.arity()
        );
        return ExitCode::FAILURE;
    }

    let mut out: Box<dyn Write> = match &flags.output {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("error writing output: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::stdout().lock()),
    };

    let mut timings = PhaseTimings {
        offline,
        ..Default::default()
    };
    let mut served = 0usize;
    let mut filled_cells = 0usize;
    let write_failed = |e: std::io::Error| {
        eprintln!("error writing output: {e}");
        ExitCode::FAILURE
    };
    if let Err(e) = writeln!(out, "{header}") {
        return write_failed(e);
    }
    for (idx, line) in lines.enumerate() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error reading {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let row = match iim::data::csv::parse_row(&line, names.len(), idx + 2) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error reading {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let missing_before = row.iter().filter(|c| c.is_none()).count();
        let t1 = Instant::now();
        let completed = match fitted.impute_one(&row) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("imputation failed on line {}: {e}", idx + 2);
                return ExitCode::FAILURE;
            }
        };
        timings.online += t1.elapsed();
        served += 1;
        filled_cells += missing_before - completed.iter().filter(|v| !v.is_finite()).count();
        if let Err(e) = writeln!(out, "{}", iim::data::csv::format_row(&completed)) {
            return write_failed(e);
        }
    }
    if let Err(e) = out.flush() {
        return write_failed(e);
    }
    let per_query = timings.online.as_secs_f64() / served.max(1) as f64;
    eprintln!(
        "{input}: {provenance}; served {served} queries ({filled_cells} cells filled), \
         {:.1} us/query; {}",
        per_query * 1e6,
        timings,
    );
    ExitCode::SUCCESS
}

fn profile(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(input) = flags.input else {
        eprintln!("error: missing input file");
        return ExitCode::from(2);
    };
    let rel = match iim::data::csv::read_path(&input) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error reading {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    use iim_data::inject::inject_attr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    println!(
        "{:<12} {:>8} {:>8}   interpretation",
        "attribute", "R2_S", "R2_H"
    );
    for j in 0..rel.arity() {
        let complete: Vec<u32> = (0..rel.n_rows())
            .filter(|&i| rel.row_complete(i))
            .map(|i| i as u32)
            .collect();
        if complete.len() < 30 {
            eprintln!("not enough complete rows to profile");
            return ExitCode::FAILURE;
        }
        let mut probe = rel.select_rows(&complete);
        let n_inject = (probe.n_rows() / 5).clamp(10, probe.n_rows() / 2);
        let truth = inject_attr(
            &mut probe,
            j,
            n_inject,
            &mut StdRng::seed_from_u64(flags.seed ^ j as u64),
        );
        match iim::baselines::diagnostics::data_profile(&probe, &truth, flags.k) {
            Ok(p) => {
                let hint = match (p.r2_sparsity < 0.5, p.r2_heterogeneity < 0.5) {
                    (true, false) => "sparse: prefer regression models (GLR/IIM)",
                    (false, true) => "heterogeneous: prefer local models (kNN/IIM)",
                    (true, true) => "hard: both sparse and heterogeneous (IIM)",
                    (false, false) => "benign: most methods work",
                };
                println!(
                    "{:<12} {:>8.2} {:>8.2}   {hint}",
                    rel.schema().name(j),
                    p.r2_sparsity,
                    p.r2_heterogeneity,
                );
            }
            Err(e) => println!("{:<12} profile failed: {e}", rel.schema().name(j)),
        }
    }
    ExitCode::SUCCESS
}
