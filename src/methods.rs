//! The canonical method lineup — one source of truth for the CLI, tests,
//! and anything else that picks methods by name.
//!
//! [`lineup`] returns IIM first (the default method) followed by the
//! thirteen Table II baselines in registry order, so a renamed or added
//! method can never drift between `iim methods`, `--method` resolution,
//! and the library surface.

use iim_baselines::registry::all_baselines_with;
use iim_core::{AdaptiveConfig, Iim, IimConfig, IndexChoice, Learning};
use iim_data::{FeatureSelection, Imputer, PerAttributeImputer};

/// Every available method: IIM (the default, listed first) followed by the
/// Table II baselines.
///
/// * `k` — neighbor count shared by IIM / kNN / kNNE / LOESS / ILLS.
/// * `seed` — RNG seed for the stochastic methods (BLR, PMM, XGB).
pub fn lineup(k: usize, seed: u64) -> Vec<Box<dyn Imputer>> {
    lineup_with(k, seed, IndexChoice::Auto)
}

/// [`lineup`] with an explicit neighbor-index choice (the CLI's
/// `--index`), plumbed into every index-backed method. The choice never
/// changes an imputation — only its latency.
pub fn lineup_with(k: usize, seed: u64, index: IndexChoice) -> Vec<Box<dyn Imputer>> {
    // Serving-default IIM: capped, stepped adaptive sweep.
    let cfg = IimConfig {
        k,
        learning: Learning::Adaptive(AdaptiveConfig {
            step: 5,
            ell_max: Some(1000),
            validation_k: Some(k.max(10)),
            ..AdaptiveConfig::default()
        }),
        index,
        ..IimConfig::default()
    };
    let mut methods: Vec<Box<dyn Imputer>> =
        vec![Box::new(PerAttributeImputer::new(Iim::new(cfg)))];
    methods.extend(all_baselines_with(
        k,
        seed,
        FeatureSelection::AllOthers,
        index,
    ));
    methods
}

/// The default method's display name (the first lineup entry).
pub fn default_name() -> String {
    lineup(1, 0)[0].name().to_string()
}

/// Resolves a method by case-insensitive display name.
pub fn by_name(name: &str, k: usize, seed: u64) -> Option<Box<dyn Imputer>> {
    by_name_with(name, k, seed, IndexChoice::Auto)
}

/// [`by_name`] with an explicit neighbor-index choice.
pub fn by_name_with(
    name: &str,
    k: usize,
    seed: u64,
    index: IndexChoice,
) -> Option<Box<dyn Imputer>> {
    lineup_with(k, seed, index)
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iim_is_the_default_and_first() {
        assert_eq!(default_name(), "IIM");
        assert_eq!(lineup(5, 0)[0].name(), "IIM");
    }

    #[test]
    fn lineup_has_all_fourteen_methods() {
        assert_eq!(lineup(5, 0).len(), 14);
    }

    #[test]
    fn by_name_is_case_insensitive_and_total_over_the_lineup() {
        assert_eq!(by_name("glr", 5, 0).unwrap().name(), "GLR");
        for m in lineup(5, 0) {
            assert!(
                by_name(m.name(), 5, 0).is_some(),
                "{} unresolvable",
                m.name()
            );
        }
        assert!(by_name("nope", 5, 0).is_none());
    }
}
