//! # iim — Imputation via Individual Models
//!
//! A from-scratch Rust implementation of
//! *Learning Individual Models for Imputation* (Zhang, Song, Sun, Wang;
//! ICDE 2019), including the thirteen comparison baselines of the paper's
//! Table II, the downstream clustering/classification applications of its
//! Table VII, calibrated synthetic analogs of its nine evaluation
//! datasets, and an experiment harness regenerating every table and
//! figure of its evaluation section.
//!
//! ## The method in one paragraph
//!
//! Missing numerical values defeat the two classic imputation families in
//! different ways: value-averaging over nearest neighbors (kNN) fails
//! under **sparsity** (no neighbor holds a similar value), and regression
//! with one shared model (GLR/LOESS) fails under **heterogeneity** (no one
//! model fits all tuples). IIM learns a small ridge-regression model
//! **per complete tuple** over that tuple's ℓ nearest neighbors
//! (Algorithm 1), imputes an incomplete tuple by evaluating the individual
//! models of its k nearest complete neighbors at the tuple's observed
//! attributes (Algorithm 2), and combines the k candidate values with
//! mutual-voting weights that suppress outlying suggestions. The number ℓ
//! is chosen **per tuple** by validating candidate models against the
//! complete tuples they would impute (Algorithm 3), with incremental
//! Gram-matrix maintenance making the sweep constant-time per step
//! (Proposition 3). kNN and GLR fall out as the ℓ = 1 and ℓ = n special
//! cases (Propositions 1–2).
//!
//! ## Quick start: learn once, impute many
//!
//! The protocol mirrors the paper's phase split ("the offline learning
//! phase only needs to be processed once", §VI-B3): `fit` learns a model
//! offline, the returned [`FittedImputer`](data::FittedImputer) serves any
//! number of online queries.
//!
//! ```
//! use iim::prelude::*;
//!
//! // The paper's Figure 1: two streets of check-ins. tx = (5.0, ?) has
//! // true A2 = 1.8.
//! let (relation, tx) = iim::data::paper_fig1();
//!
//! let imputer = PerAttributeImputer::new(Iim::new(IimConfig {
//!     k: 3,
//!     ..IimConfig::default()
//! }));
//!
//! // Offline phase, once — the relation is fully complete; nothing needs
//! // imputing yet.
//! let fitted = imputer.fit(&relation).unwrap();
//!
//! // Online phase, per query: `None` marks the cell to impute.
//! let served = fitted.impute_one(&tx).unwrap();
//! assert!((served[1] - 1.8).abs() < 0.7); // kNN value-averaging is off by 1.6
//!
//! // Whole-relation batch imputation is the same machinery:
//! // `impute(&rel)` ≡ `fit` on the missing attributes + `impute_all`.
//! let mut incomplete = relation.clone();
//! incomplete.push_row_opt(&tx);
//! let filled = imputer.impute(&incomplete).unwrap();
//! assert_eq!(filled.missing_count(), 0);
//! ```
//!
//! ### Migrating from the batch-only trait (pre-fit/serve)
//!
//! * `Imputer::impute(&rel)` still exists — it is now a blanket convenience
//!   over `fit_targets` + `impute_all`. Semantics are unchanged for the
//!   deterministic methods; BLR and PMM now key their per-query randomness
//!   by the query's bit pattern instead of a shared sequential RNG stream
//!   (the serving contract: same fitted model + same query ⇒ same answer),
//!   so their imputed values differ from pre-fit/serve releases for the
//!   same seed, and identical query rows receive identical draws.
//! * `Imputer::impute_timed` is gone: time the phases yourself around
//!   [`Imputer::fit_targets`](data::Imputer::fit_targets) (offline) and
//!   [`FittedImputer::impute_all`](data::FittedImputer::impute_all)
//!   (online), accumulating into
//!   [`PhaseTimings`](data::PhaseTimings) — see `iim-bench`'s
//!   `run_lineup` for the pattern.
//! * Methods implementing the trait now provide `fit_targets` (offline
//!   learning, returning a `Box<dyn FittedImputer>`) instead of `impute`;
//!   per-attribute methods keep implementing
//!   [`AttrEstimator`](data::AttrEstimator) and inherit everything through
//!   [`PerAttributeImputer`](data::PerAttributeImputer).
//!
//! ## Parallelism
//!
//! Both phases are embarrassingly parallel — the paper learns one model
//! per tuple and serves each query independently — and every crate fans
//! its hot loops out through one substrate, [`exec`] (`iim-exec`):
//!
//! * **Configuration.** Worker count resolves, in order, from the CLI's
//!   `--threads`, programmatic [`exec::set_default_threads`], the
//!   `IIM_THREADS` environment variable, and the available parallelism.
//!   [`IimConfig::threads`](core::IimConfig) still overrides per learning
//!   call (`0` = process default). Maps smaller than
//!   [`exec::DEFAULT_SERIAL_CUTOFF`] run inline on the caller.
//! * **Determinism.** Every parallel path is a pure indexed map — results
//!   land at their own index and float reductions stay serial — so output
//!   is **bitwise-identical for every worker count**. This is
//!   property-tested per method in `tests/fit_serve.rs` (a 4-worker
//!   `impute_all` equals the serial one cell-for-cell) and asserted on
//!   real workloads by the `parallel` bench binary.
//! * **What runs in parallel.** Offline: individual-model learning and
//!   the adaptive ℓ sweep (per tuple), neighbor-order construction (per
//!   point), per-target fits in
//!   [`PerAttributeImputer`](data::PerAttributeImputer), and the per-row
//!   inner loops of SVD/IFC/ILLS/ERACER. Online:
//!   [`FittedImputer::impute_batch`](data::FittedImputer) and
//!   [`FittedImputer::impute_all`](data::FittedImputer) fan queries out;
//!   one fitted model also serves many threads directly (`Send + Sync`,
//!   validated by a cross-thread bitwise test).
//! * **Measured.** `cargo run -p iim-bench --release --bin parallel`
//!   records per-method offline/online wall-clock at 1 vs N threads into
//!   `bench_results/BENCH_parallel.json`, asserting every N-thread output
//!   bitwise-equal to serial on the way. The file records
//!   `available_cores` — re-run on multi-core hardware to capture that
//!   machine's scaling (the committed baseline comes from a 1-core
//!   container, where speedups ≈1× by construction).
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`core`] | `iim-core` | IIM itself: learning, imputation, adaptive ℓ, incremental computation |
//! | [`data`] | `iim-data` | relations, missing-value injection, metrics, the [`Imputer`](data::Imputer) protocol |
//! | [`baselines`] | `iim-baselines` | Mean, kNN, kNNE, IFC, GMM, SVD, ILLS, GLR, LOESS, BLR, ERACER, PMM, XGB |
//! | [`neighbors`] | `iim-neighbors` | Formula-1 distances, brute/KD-tree kNN, neighbor orders |
//! | [`exec`] | `iim-exec` | deterministic parallel maps, the process-wide worker pool |
//! | [`linalg`] | `iim-linalg` | dense kernels: Cholesky/LU, Jacobi eigen, thin SVD, ridge, Gram accumulators |
//! | [`ml`] | `iim-ml` | k-means + purity, kNN classifier + F1 (Table VII) |
//! | [`datagen`] | `iim-datagen` | calibrated analogs of ASF, CCS, CCPP, SN, PHASE, CA, DA, MAM, HEP |
//! | [`persist`] | `iim-persist` | versioned binary model snapshots (save/load every fitted imputer bit-exactly) |
//! | [`serve`] | `iim-serve` | std-only HTTP/1.1 daemon over a micro-batching queue |
//!
//! Experiments: `cargo run -p iim-bench --release --bin all` regenerates
//! every table and figure into `bench_results/`.
//!
//! ## Deployment
//!
//! The offline phase survives the process: [`persist`] snapshots any
//! fitted lineup model to a checksummed, versioned binary file whose
//! loaded form serves **bitwise-identical** fills, and [`serve`] turns it
//! into a long-lived HTTP daemon (`iim fit --save model.iim` /
//! `iim serve model.iim`). See the README's *Deployment* section for the
//! format guarantees and an example curl session.

pub use iim_baselines as baselines;
pub use iim_core as core;
pub use iim_data as data;
pub use iim_datagen as datagen;
pub use iim_exec as exec;
pub use iim_linalg as linalg;
pub use iim_ml as ml;
pub use iim_neighbors as neighbors;
pub use iim_persist as persist;
pub use iim_serve as serve;

pub mod methods;

/// The types most applications need.
pub mod prelude {
    pub use iim_baselines::all_baselines;
    pub use iim_core::{AdaptiveConfig, Iim, IimConfig, IimModel, Learning, Weighting};
    pub use iim_data::{
        AttrTask, FeatureSelection, FittedImputer, GroundTruth, ImputeError, Imputer, MissingCell,
        PerAttributeImputer, PhaseTimings, Relation, RowOpt, Schema,
    };
}
