//! # iim — Imputation via Individual Models
//!
//! A from-scratch Rust implementation of
//! *Learning Individual Models for Imputation* (Zhang, Song, Sun, Wang;
//! ICDE 2019), including the thirteen comparison baselines of the paper's
//! Table II, the downstream clustering/classification applications of its
//! Table VII, calibrated synthetic analogs of its nine evaluation
//! datasets, and an experiment harness regenerating every table and
//! figure of its evaluation section.
//!
//! ## The method in one paragraph
//!
//! Missing numerical values defeat the two classic imputation families in
//! different ways: value-averaging over nearest neighbors (kNN) fails
//! under **sparsity** (no neighbor holds a similar value), and regression
//! with one shared model (GLR/LOESS) fails under **heterogeneity** (no one
//! model fits all tuples). IIM learns a small ridge-regression model
//! **per complete tuple** over that tuple's ℓ nearest neighbors
//! (Algorithm 1), imputes an incomplete tuple by evaluating the individual
//! models of its k nearest complete neighbors at the tuple's observed
//! attributes (Algorithm 2), and combines the k candidate values with
//! mutual-voting weights that suppress outlying suggestions. The number ℓ
//! is chosen **per tuple** by validating candidate models against the
//! complete tuples they would impute (Algorithm 3), with incremental
//! Gram-matrix maintenance making the sweep constant-time per step
//! (Proposition 3). kNN and GLR fall out as the ℓ = 1 and ℓ = n special
//! cases (Propositions 1–2).
//!
//! ## Quick start
//!
//! ```
//! use iim::prelude::*;
//!
//! // The paper's Figure 1: two streets of check-ins, plus tx = (5.0, ?)
//! // whose true A2 value is 1.8.
//! let (mut relation, tx) = iim::data::paper_fig1();
//! relation.push_row_opt(&tx);
//!
//! let imputer = PerAttributeImputer::new(Iim::new(IimConfig {
//!     k: 3,
//!     ..IimConfig::default()
//! }));
//! let filled = imputer.impute(&relation).unwrap();
//! let value = filled.get(8, 1).unwrap();
//! assert!((value - 1.8).abs() < 0.7); // kNN value-averaging is off by 1.6
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`core`] | `iim-core` | IIM itself: learning, imputation, adaptive ℓ, incremental computation |
//! | [`data`] | `iim-data` | relations, missing-value injection, metrics, the [`Imputer`](data::Imputer) protocol |
//! | [`baselines`] | `iim-baselines` | Mean, kNN, kNNE, IFC, GMM, SVD, ILLS, GLR, LOESS, BLR, ERACER, PMM, XGB |
//! | [`neighbors`] | `iim-neighbors` | Formula-1 distances, brute/KD-tree kNN, neighbor orders |
//! | [`linalg`] | `iim-linalg` | dense kernels: Cholesky/LU, Jacobi eigen, thin SVD, ridge, Gram accumulators |
//! | [`ml`] | `iim-ml` | k-means + purity, kNN classifier + F1 (Table VII) |
//! | [`datagen`] | `iim-datagen` | calibrated analogs of ASF, CCS, CCPP, SN, PHASE, CA, DA, MAM, HEP |
//!
//! Experiments: `cargo run -p iim-bench --release --bin all` regenerates
//! every table and figure into `bench_results/`.

pub use iim_baselines as baselines;
pub use iim_core as core;
pub use iim_data as data;
pub use iim_datagen as datagen;
pub use iim_linalg as linalg;
pub use iim_ml as ml;
pub use iim_neighbors as neighbors;

/// The types most applications need.
pub mod prelude {
    pub use iim_baselines::all_baselines;
    pub use iim_core::{AdaptiveConfig, Iim, IimConfig, IimModel, Learning, Weighting};
    pub use iim_data::{
        AttrTask, FeatureSelection, GroundTruth, ImputeError, Imputer, MissingCell,
        PerAttributeImputer, Relation, Schema,
    };
}
