//! Sequence helpers: the subset of `rand::seq::SliceRandom` the workspace
//! uses (`shuffle`, `choose`).

use crate::RngCore;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, deterministic given the rng state.
    fn shuffle<G: RngCore>(&mut self, rng: &mut G);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<G: RngCore>(&self, rng: &mut G) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<G: RngCore>(&mut self, rng: &mut G) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<G: RngCore>(&self, rng: &mut G) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}
