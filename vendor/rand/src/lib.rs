//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access to a
//! crates.io registry, so the subset of the `rand 0.8` API the workspace
//! actually uses is reimplemented here: [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64 — deterministic per seed, but *not* the same
//! stream as upstream `StdRng`), the [`Rng`]/[`SeedableRng`] traits with
//! `gen_range`/`gen_bool`, and [`seq::SliceRandom`] with
//! `shuffle`/`choose`.
//!
//! Everything seeded in this workspace goes through `seed_from_u64`, so
//! determinism holds as long as this implementation is used consistently.
//! If the real `rand` crate is ever substituted back in, fixed-seed test
//! expectations may shift (tolerance-based assertions are unaffected).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Core source of uniform `u64`s. Object-safe.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding protocol. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
fn unit_f64<G: RngCore + ?Sized>(g: &mut G) -> f64 {
    (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Sample from the "standard" distribution of `T` (uniform over the
    /// value range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable by [`Rng::gen`]; mirrors `Distribution<T> for Standard`.
pub trait StandardSample {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self;
}

impl StandardSample for f64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> f64 {
        unit_f64(g)
    }
}

impl StandardSample for f32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> f32 {
        ((g.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> u64 {
        g.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> u32 {
        g.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> bool {
        g.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

/// Element types uniformly samplable from a range. A single generic
/// `SampleRange` impl per range shape routes through this trait so type
/// inference (and `{float}` fallback to `f64`) behaves like the real
/// `rand` crate.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_between<G: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, g: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T {
        T::sample_between(self.start, self.end, false, g)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T {
        T::sample_between(*self.start(), *self.end(), true, g)
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, g: &mut G) -> $t {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let r = (g.next_u64() as u128) % span as u128;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, g: &mut G) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                let u = unit_f64(g) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against round-up to the excluded endpoint: for
                // large-magnitude ranges both v and `hi - (hi-lo)*EPS` can
                // round to exactly hi, so step to the previous representable
                // value instead.
                if inclusive || v < hi {
                    v
                } else {
                    <$t>::max(lo, hi.next_down())
                }
            }
        }
    )*};
}

impl_float_sample_uniform!(f32, f64);
