//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion::{default, sample_size, benchmark_group,
//! bench_function}`, `BenchmarkGroup::{bench_function, bench_with_input,
//! finish}`, `BenchmarkId::new`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it runs a fixed warm-up
//! plus `sample_size` timed batches per benchmark and prints
//! median/mean wall-clock per iteration — enough to compare kernels by
//! eye and to keep `cargo bench` runnable without the real crate.
//!
//! `cargo bench -- --quick` (or `IIM_BENCH_QUICK=1`) mirrors real
//! criterion's `--quick`: 2 samples and a short warm-up, so CI can smoke
//! every benchmark — does it run, does its in-bench parity assert hold —
//! without paying for stable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// True when `--quick` was passed or `IIM_BENCH_QUICK` is set: smoke-run
/// benchmarks (2 samples, ~2ms warm-up) instead of measuring carefully.
fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::args().any(|a| a == "--quick") || std::env::var_os("IIM_BENCH_QUICK").is_some()
    })
}

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations of the timed samples (seconds).
    results: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20ms of work or 3 iterations, whichever is
        // later, to get code and caches hot and to size the batches.
        let (warm_ms, sample_target_s) = if quick_mode() { (2, 5e-4) } else { (20, 5e-3) };
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(warm_ms) {
            black_box(routine());
            warm_iters += 1;
            if warm_iters > 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Aim for ~5ms per sample (0.5ms in quick mode), at least one
        // iteration.
        let batch = ((sample_target_s / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

        self.results.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.results.push(t.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: if quick_mode() { 2 } else { samples },
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{full_id:<48} (no samples — closure never called iter)");
        return;
    }
    b.results.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = b.results[b.results.len() / 2];
    let mean = b.results.iter().sum::<f64>() / b.results.len() as f64;
    println!(
        "{full_id:<48} median {:>12}   mean {:>12}   ({} samples)",
        fmt_secs(median),
        fmt_secs(mean),
        b.results.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
