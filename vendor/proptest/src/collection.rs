//! Collection strategies: the `vec` combinator.

use crate::Strategy;
use rand::{rngs::StdRng, Rng};

/// Inclusive size bounds for generated collections. Accepts a fixed
/// `usize`, `a..b`, or `a..=b`, mirroring proptest's `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
