//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`ProptestConfig`],
//! and the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` unavailable; assertions should carry their own context (the
//!   workspace's property tests all format the offending values).
//! * **Deterministic.** Each `proptest!` test derives its RNG seed from
//!   the test function's name (FNV-1a), so runs are reproducible and
//!   stable across `cargo test` invocations — there is no persistence
//!   file and no environment-variable override.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Execution configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Strategy yielding a fixed value every time.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[doc(hidden)]
pub fn __rng_for(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable, deterministic seeds without any
    // global state.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

#[doc(hidden)]
pub fn __generate<S: Strategy>(strategy: &S, rng: &mut StdRng) -> S::Value {
    strategy.generate(rng)
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Runs each contained `#[test]` function over `cases` generated inputs.
/// No shrinking; the seed is derived from the test name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::__rng_for(stringify!($name));
            for __case in 0..config.cases {
                $( let $pat = $crate::__generate(&($strat), &mut rng); )+
                $body
            }
        }
    )*};
}
