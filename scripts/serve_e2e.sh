#!/usr/bin/env bash
# End-to-end serving pipeline, run by CI and runnable locally:
#
#   cargo build --release --locked && scripts/serve_e2e.sh
#
# For EVERY method in the lineup (`iim methods`):
#   1. `iim fit --save`        — offline phase → snapshot on disk
#   2. `iim impute --model`    — stream queries through the loaded snapshot
#   3. `iim impute --fit-on`   — stream the same queries through an
#      in-process fit, and diff against (2) byte-for-byte: a snapshot is
#      the fitted model, not an approximation
#   4. `iim serve` in the background + curl the same queries (batch and
#      single-tuple) — diff the daemon's response against (2)
#      byte-for-byte; any non-2xx fails via curl -f
#   5. kill the daemon
#
# Then, for every absorb-supporting method (IIM, Mean, GLR), the
# streaming leg: serve with per-learn checkpointing, POST /learn, and
# byte-diff the daemon's post-learn fills — both live and after a
# restart from the checkpointed delta snapshot — against a
# single-process `iim learn` + `iim impute` reference.
#
# Then the registry leg: stage two models into a `--models-dir` registry,
# serve both from one daemon, byte-diff the per-model routes against the
# single-model references, hot-swap a tenant under request load (every
# response must succeed), and evict/reactivate under `--max-resident 1`.
#
# Then the crash-recovery legs: a checkpointing daemon is SIGKILLed
# mid-learn-flood and must restart serving exactly the durably-acked
# prefix (byte-diffed against a never-killed reference), and a snapshot
# with a deterministically torn delta tail must load, report the recovery
# in /info, and be repaired in place by the next checkpointed learn.
#
# Then the overload probe: with --max-connections 1 and a held
# connection, further connections must shed fast with 503 + Retry-After,
# and fills must stay bitwise-correct once the slot frees.
#
# Every daemon is stopped with SIGTERM and must exit 0 (graceful drain),
# never relying on default signal death (SIGKILL legs excepted — that's
# the crash under test).
#
# Artifacts (snapshots, expected/served CSVs) land in $E2E_DIR for CI to
# upload.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/iim}
TRAIN=tests/data/serve_train.csv
QUERIES=tests/data/serve_queries.csv
E2E_DIR=${E2E_DIR:-e2e}
PORT=${PORT:-17878}
K=5
SEED=42

mkdir -p "$E2E_DIR"
fail() { echo "FAIL: $*" >&2; exit 1; }

# Graceful shutdown: SIGTERM must drain in-flight work and exit 0; a
# non-zero status (including 143, death by unhandled SIGTERM) fails.
stop_daemon() {
  kill -TERM "$1"
  local code=0
  wait "$1" || code=$?
  [ "$code" = 0 ] || fail "daemon pid $1 exited $code after SIGTERM (want a clean 0)"
}

METHODS=$("$BIN" methods | sed 's/ (default)//')
echo "methods under test:" $METHODS

for m in $METHODS; do
  echo "=== $m ==="
  # Fresh port per method: the previous daemon's closed connections sit in
  # TIME_WAIT on its port, and TcpListener::bind (no SO_REUSEADDR) would
  # intermittently fail with EADDRINUSE if the port were reused.
  PORT=$((PORT + 1))
  snap="$E2E_DIR/$m.iim"
  expected="$E2E_DIR/$m.expected.csv"
  infit="$E2E_DIR/$m.infit.csv"
  served="$E2E_DIR/$m.served.csv"

  "$BIN" fit --save "$snap" --method "$m" --k $K --seed $SEED "$TRAIN"
  "$BIN" impute --model "$snap" --output "$expected" "$QUERIES"
  "$BIN" impute --fit-on "$TRAIN" --method "$m" --k $K --seed $SEED \
      --output "$infit" "$QUERIES"
  cmp "$expected" "$infit" \
    || fail "$m: snapshot serving diverged from the in-process fit"

  "$BIN" serve "$snap" --addr "127.0.0.1:$PORT" --threads 2 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  up=0
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
  done
  [ "$up" = 1 ] || fail "$m: daemon never became healthy"

  curl -sf "http://127.0.0.1:$PORT/info" | grep -q "\"method\":\"$m\"" \
    || fail "$m: /info does not report the method"
  # Keep-alive perf sanity: one curl invocation with three URLs must reuse
  # a single connection. The daemon counts accepted connections in /info,
  # so the delta across the probe is exactly 2 (the probe itself plus the
  # final /info read) — 4 would mean per-request connections are back.
  before=$(curl -sf "http://127.0.0.1:$PORT/info" \
    | grep -o '"connections":[0-9]*' | cut -d: -f2)
  curl -sf "http://127.0.0.1:$PORT/healthz" "http://127.0.0.1:$PORT/healthz" \
      "http://127.0.0.1:$PORT/healthz" > /dev/null \
    || fail "$m: keep-alive probe returned non-2xx"
  after=$(curl -sf "http://127.0.0.1:$PORT/info" \
    | grep -o '"connections":[0-9]*' | cut -d: -f2)
  [ "$((after - before))" = 2 ] \
    || fail "$m: keep-alive probe opened $((after - before - 1)) connections for 3 requests (want 1)"
  # Batch request: the whole query file in one POST.
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" > "$served" \
    || fail "$m: batch /impute returned non-2xx"
  cmp "$served" "$expected" \
    || fail "$m: daemon response diverged from iim impute output"
  # Single-tuple request: header + first query row.
  head -2 "$QUERIES" | curl -sf --data-binary @- "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.single.csv" \
    || fail "$m: single-tuple /impute returned non-2xx"
  head -2 "$expected" | cmp - "$E2E_DIR/$m.single.csv" \
    || fail "$m: single-tuple response diverged from the batch fill"

  stop_daemon $daemon
  trap - EXIT
done

echo "OK: every method round-tripped fit -> save -> load -> serve with byte-identical fills"

# --- Streaming leg: learn over HTTP, checkpoint, restart, byte-diff ---
#
# The absorb-supporting subset is pinned here; the workspace test
# `absorb_support_is_exact_over_the_lineup` keeps this list honest.
LEARN_ROWS="$E2E_DIR/learn_rows.csv"
printf 'a,b,c,d\n0.3,1.5,0.45,39.6\n0.72,1.9,0.81,39.25\n' > "$LEARN_ROWS"

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

for m in IIM Mean GLR; do
  echo "=== $m (learn) ==="
  snap="$E2E_DIR/$m.iim"
  live="$E2E_DIR/$m.learned.iim"
  ref="$E2E_DIR/$m.ref.iim"
  expected="$E2E_DIR/$m.expected_after.csv"

  # Single-process reference: absorb via the CLI (one delta record) and
  # impute through the replayed snapshot.
  cp "$snap" "$ref"
  "$BIN" learn --model "$ref" "$LEARN_ROWS"
  "$BIN" impute --model "$ref" --output "$expected" "$QUERIES"

  # Daemon: serve a copy with a checkpoint flushed after every learn,
  # then stream the same rows through POST /learn.
  cp "$snap" "$live"
  PORT=$((PORT + 1))
  "$BIN" serve "$live" --addr "127.0.0.1:$PORT" --threads 2 \
      --checkpoint-every 1 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  wait_healthy $PORT || fail "$m: learn daemon never became healthy"

  curl -sf --data-binary "@$LEARN_ROWS" "http://127.0.0.1:$PORT/learn" \
      | grep -q '"absorbed":2' \
    || fail "$m: /learn did not absorb both rows"
  curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":2' \
    || fail "$m: /info does not report the absorbed rows"
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.served_live.csv" \
    || fail "$m: post-learn /impute returned non-2xx"
  cmp "$E2E_DIR/$m.served_live.csv" "$expected" \
    || fail "$m: live post-learn fills diverged from the CLI reference"

  stop_daemon $daemon
  trap - EXIT

  # Restart from the checkpointed delta snapshot: the replayed model
  # must serve the same bytes as both the live daemon and the reference.
  PORT=$((PORT + 1))
  "$BIN" serve "$live" --addr "127.0.0.1:$PORT" --threads 2 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  wait_healthy $PORT || fail "$m: restarted daemon never became healthy"
  curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":2' \
    || fail "$m: restart lost the checkpointed absorbs"
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.served_restarted.csv" \
    || fail "$m: post-restart /impute returned non-2xx"
  cmp "$E2E_DIR/$m.served_restarted.csv" "$expected" \
    || fail "$m: delta-snapshot restart diverged from the CLI reference"
  stop_daemon $daemon
  trap - EXIT
done

echo "OK: learn -> checkpoint -> restart served byte-identical fills for every absorb-supporting method"

# --- Registry leg: multi-tenant serving, hot swap under load, eviction ---
#
# Two tenants staged from leg-1 snapshots; the per-model routes must serve
# byte-identical fills to the single-model daemons those snapshots backed.
echo "=== registry ==="
REG="$E2E_DIR/registry"
rm -rf "$REG"
mkdir -p "$REG"

"$BIN" registry stage --models-dir "$REG" alpha "$E2E_DIR/IIM.iim" \
  || fail "registry: CLI stage alpha failed"
"$BIN" registry stage --models-dir "$REG" beta "$E2E_DIR/Mean.iim" \
  || fail "registry: CLI stage beta failed"
# Capture first, grep second: `list | grep -q` lets grep exit on the first
# match and EPIPE the still-printing CLI (a pipefail failure even on success).
listing=$("$BIN" registry list --models-dir "$REG") \
  || fail "registry: CLI list failed"
printf '%s\n' "$listing" | grep -q "alpha" \
  || fail "registry: list does not show alpha"

PORT=$((PORT + 1))
"$BIN" serve --models-dir "$REG" --addr "127.0.0.1:$PORT" --threads 2 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "registry daemon never became healthy"

curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"mode":"registry"' \
  || fail "registry: /info does not report registry mode"

# Per-model serving, byte-diffed against the single-model references.
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > "$E2E_DIR/registry.alpha.csv" \
  || fail "registry: /models/alpha/impute returned non-2xx"
cmp "$E2E_DIR/registry.alpha.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "registry: alpha diverged from the single-model IIM daemon"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/beta/impute" \
    > "$E2E_DIR/registry.beta.csv" \
  || fail "registry: /models/beta/impute returned non-2xx"
cmp "$E2E_DIR/registry.beta.csv" "$E2E_DIR/Mean.expected.csv" \
  || fail "registry: beta diverged from the single-model Mean daemon"

# Unknown models and unknown routes answer with structured JSON errors.
curl -s "http://127.0.0.1:$PORT/models/ghost/info" | grep -q '"error":"unknown_model"' \
  || fail "registry: ghost model is not a structured 404"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/nope")
[ "$code" = "404" ] || fail "registry: unknown route returned $code, want 404"

# Hot swap under load: hammer alpha while PUTting the Mean snapshot over
# it and then the IIM snapshot back. Every request must succeed (the swap
# barrier drops nothing), and the settled tenant must serve IIM's bytes.
rm -f "$E2E_DIR/registry.swap_errors"
(
  for _ in $(seq 1 40); do
    curl -sf --data-binary "@$QUERIES" \
        "http://127.0.0.1:$PORT/models/alpha/impute" > /dev/null \
      || echo "request failed" >> "$E2E_DIR/registry.swap_errors"
  done
) &
hammer=$!
curl -sf -X PUT --data-binary "@$E2E_DIR/Mean.iim" \
    "http://127.0.0.1:$PORT/models/alpha" | grep -q '"swapped":true' \
  || fail "registry: hot swap to Mean did not report swapped:true"
curl -sf -X PUT --data-binary "@$E2E_DIR/IIM.iim" \
    "http://127.0.0.1:$PORT/models/alpha" | grep -q '"swapped":true' \
  || fail "registry: hot swap back to IIM did not report swapped:true"
wait $hammer
[ ! -e "$E2E_DIR/registry.swap_errors" ] \
  || fail "registry: a request failed during the hot swaps"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > "$E2E_DIR/registry.alpha_after_swap.csv" \
  || fail "registry: post-swap impute returned non-2xx"
cmp "$E2E_DIR/registry.alpha_after_swap.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "registry: post-swap alpha diverged from the IIM reference"

stop_daemon $daemon
trap - EXIT

# Eviction: with one resident slot, touching beta evicts alpha; touching
# alpha again reactivates it transparently with identical bytes.
PORT=$((PORT + 1))
"$BIN" serve --models-dir "$REG" --addr "127.0.0.1:$PORT" --threads 2 \
    --max-resident 1 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "eviction daemon never became healthy"

curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > /dev/null || fail "eviction: warm-up impute on alpha failed"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/beta/impute" \
    > /dev/null || fail "eviction: impute on beta failed"
curl -sf "http://127.0.0.1:$PORT/models/alpha/info" | grep -q '"resident":false' \
  || fail "eviction: alpha still resident with max-resident 1"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > "$E2E_DIR/registry.alpha_reactivated.csv" \
  || fail "eviction: reactivating impute on alpha failed"
cmp "$E2E_DIR/registry.alpha_reactivated.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "eviction: reactivated alpha diverged from the IIM reference"

stop_daemon $daemon
trap - EXIT

echo "OK: registry served both tenants byte-identically, hot-swapped under load with zero failures, and survived eviction"

# --- Crash-recovery leg A: kill -9 mid-learn-flood, restart, byte-diff ---
#
# A daemon checkpointing every learn is SIGKILLed mid-flood. On restart it
# must serve exactly the prefix of learns it durably acked: /info reports
# some N <= total, and the fills are byte-identical to a never-killed
# reference that learned the same first N rows.
echo "=== crash recovery (kill -9 mid-learn) ==="
CRASH="$E2E_DIR/crash.iim"
CRASH_ROWS="$E2E_DIR/crash_rows.csv"
cp "$E2E_DIR/IIM.iim" "$CRASH"
printf 'a,b,c,d\n' > "$CRASH_ROWS"
for i in $(seq 1 200); do
  printf '0.%02d,1.%02d,0.5%02d,39.%02d\n' $((i % 90 + 1)) $((i % 90 + 1)) \
      $((i % 90 + 1)) $((i % 90 + 1)) >> "$CRASH_ROWS"
done

PORT=$((PORT + 1))
"$BIN" serve "$CRASH" --addr "127.0.0.1:$PORT" --threads 2 \
    --checkpoint-every 1 &
daemon=$!
trap 'kill -9 $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "crash: daemon never became healthy"

# Stream the rows one request at a time (strict absorb order), then pull
# the rug out mid-flood. Requests after the kill fail; that's the point.
(
  tail -n +2 "$CRASH_ROWS" | while IFS= read -r row; do
    printf 'a,b,c,d\n%s\n' "$row" \
      | curl -sf --data-binary @- "http://127.0.0.1:$PORT/learn" > /dev/null \
      || break
  done
) &
flood=$!
sleep 0.5
kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
wait "$flood" 2>/dev/null || true
trap - EXIT

PORT=$((PORT + 1))
"$BIN" serve "$CRASH" --addr "127.0.0.1:$PORT" --threads 2 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "crash: restarted daemon never became healthy"
info=$(curl -sf "http://127.0.0.1:$PORT/info")
printf '%s' "$info" | grep -q '"recovered":' \
  || fail "crash: /info does not surface the recovered counter"
N=$(printf '%s' "$info" | grep -o '"absorbed":[0-9]*' | cut -d: -f2)
[ -n "$N" ] || fail "crash: /info does not report absorbed rows"
echo "crash: daemon durably absorbed $N of 200 rows before SIGKILL"

# Never-killed reference: learn the same first N rows offline, then
# byte-diff the restarted daemon's fills against it.
CRASH_REF="$E2E_DIR/crash_ref.iim"
cp "$E2E_DIR/IIM.iim" "$CRASH_REF"
if [ "$N" -gt 0 ]; then
  head -n $((N + 1)) "$CRASH_ROWS" > "$E2E_DIR/crash_rows_prefix.csv"
  "$BIN" learn --model "$CRASH_REF" "$E2E_DIR/crash_rows_prefix.csv"
fi
"$BIN" impute --model "$CRASH_REF" --output "$E2E_DIR/crash.expected.csv" "$QUERIES"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
    > "$E2E_DIR/crash.served.csv" \
  || fail "crash: post-restart /impute returned non-2xx"
cmp "$E2E_DIR/crash.served.csv" "$E2E_DIR/crash.expected.csv" \
  || fail "crash: post-restart fills diverged from the never-killed reference"
stop_daemon $daemon
trap - EXIT

echo "OK: SIGKILL mid-learn lost nothing that was acked; restart served the durable prefix byte-identically"

# --- Crash-recovery leg B: torn tail on disk, recover, repair ---
#
# A deterministic torn tail: cut bytes off the snapshot's final delta
# record. The daemon must start anyway, report the recovery in /info,
# serve the valid prefix byte-identically, and its next checkpointed
# learn must repair the file so a plain CLI load succeeds afterwards.
echo "=== crash recovery (torn tail) ==="
TORN="$E2E_DIR/torn.iim"
TORN_REF="$E2E_DIR/torn_ref.iim"
ROW1="$E2E_DIR/torn_row1.csv"
ROW2="$E2E_DIR/torn_row2.csv"
ROW3="$E2E_DIR/torn_row3.csv"
printf 'a,b,c,d\n0.3,1.5,0.45,39.6\n' > "$ROW1"
printf 'a,b,c,d\n0.72,1.9,0.81,39.25\n' > "$ROW2"
printf 'a,b,c,d\n0.55,1.7,0.6,39.4\n' > "$ROW3"

cp "$E2E_DIR/IIM.iim" "$TORN"
"$BIN" learn --model "$TORN" "$ROW1"
"$BIN" learn --model "$TORN" "$ROW2"
truncate -s -5 "$TORN"   # tear the final record

# Reference: the valid prefix (row 1) plus the repair-time learn (row 3).
cp "$E2E_DIR/IIM.iim" "$TORN_REF"
"$BIN" learn --model "$TORN_REF" "$ROW1"
"$BIN" learn --model "$TORN_REF" "$ROW3"
"$BIN" impute --model "$TORN_REF" --output "$E2E_DIR/torn.expected.csv" "$QUERIES"

PORT=$((PORT + 1))
"$BIN" serve "$TORN" --addr "127.0.0.1:$PORT" --threads 2 \
    --checkpoint-every 1 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "torn: daemon refused the recoverable snapshot"
curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"recovered":1' \
  || fail "torn: /info does not report the recovery"
curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":1' \
  || fail "torn: the torn record was not dropped (want 1 absorbed row)"
curl -sf --data-binary "@$ROW3" "http://127.0.0.1:$PORT/learn" \
    | grep -q '"absorbed":1' \
  || fail "torn: repair-time /learn failed"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
    > "$E2E_DIR/torn.served.csv" \
  || fail "torn: post-repair /impute returned non-2xx"
cmp "$E2E_DIR/torn.served.csv" "$E2E_DIR/torn.expected.csv" \
  || fail "torn: fills diverged from the prefix+repair reference"
stop_daemon $daemon
trap - EXIT

# The checkpointed learn truncated the damage before appending: a plain
# CLI load must now succeed with both rows and no recovery warning.
"$BIN" impute --model "$TORN" --output "$E2E_DIR/torn.cli.csv" "$QUERIES" \
  || fail "torn: repaired file does not load cleanly"
cmp "$E2E_DIR/torn.cli.csv" "$E2E_DIR/torn.expected.csv" \
  || fail "torn: repaired file serves different bytes than the daemon did"

echo "OK: torn tail recovered to the acked prefix, was repaired in place, and never changed a fill"

# --- Overload probe: connection cap sheds with 503 + Retry-After ---
#
# With --max-connections 1 and one held connection, further connections
# must be shed fast with an explicit 503 + Retry-After — and once the
# held connection closes, fills are served bitwise-correctly again.
echo "=== overload ==="
PORT=$((PORT + 1))
"$BIN" serve "$E2E_DIR/IIM.iim" --addr "127.0.0.1:$PORT" --threads 2 \
    --max-connections 1 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "overload: daemon never became healthy"

# Hold the only admitted slot on a raw keep-alive connection.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /healthz HTTP/1.1\r\nHost: e2e\r\n\r\n' >&3
read -r held_status <&3
case "$held_status" in
  *"200 OK"*) ;;
  *) fail "overload: held connection was not admitted: $held_status" ;;
esac

shed_headers=$(curl -s -o /dev/null -D - --max-time 5 "http://127.0.0.1:$PORT/healthz")
printf '%s' "$shed_headers" | grep -q "^HTTP/1.1 503" \
  || fail "overload: over-cap connection was not shed with 503"
printf '%s' "$shed_headers" | grep -qi "^Retry-After: 1" \
  || fail "overload: shed response carries no Retry-After hint"

# Release the slot; the daemon must recover and serve correct fills.
exec 3>&- 3<&-
served_ok=0
for _ in $(seq 1 50); do
  if curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/overload.served.csv" 2>/dev/null; then served_ok=1; break; fi
  sleep 0.1
done
[ "$served_ok" = 1 ] || fail "overload: slot never freed after the held connection closed"
cmp "$E2E_DIR/overload.served.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "overload: shedding changed a fill"
curl -sf "http://127.0.0.1:$PORT/info" | grep -qE '"shed":[1-9]' \
  || fail "overload: /info does not count the shed connection"
stop_daemon $daemon
trap - EXIT

echo "OK: overload shed fast with 503 + Retry-After and zero wrong fills"
