#!/usr/bin/env bash
# End-to-end serving pipeline, run by CI and runnable locally:
#
#   cargo build --release --locked && scripts/serve_e2e.sh
#
# For EVERY method in the lineup (`iim methods`):
#   1. `iim fit --save`        — offline phase → snapshot on disk
#   2. `iim impute --model`    — stream queries through the loaded snapshot
#   3. `iim impute --fit-on`   — stream the same queries through an
#      in-process fit, and diff against (2) byte-for-byte: a snapshot is
#      the fitted model, not an approximation
#   4. `iim serve` in the background + curl the same queries (batch and
#      single-tuple) — diff the daemon's response against (2)
#      byte-for-byte; any non-2xx fails via curl -f
#   5. kill the daemon
#
# Then, for every absorb-supporting method (IIM, Mean, GLR), the
# streaming leg: serve with per-learn checkpointing, POST /learn, and
# byte-diff the daemon's post-learn fills — both live and after a
# restart from the checkpointed delta snapshot — against a
# single-process `iim learn` + `iim impute` reference.
#
# Then the registry leg: stage two models into a `--models-dir` registry,
# serve both from one daemon, byte-diff the per-model routes against the
# single-model references, hot-swap a tenant under request load (every
# response must succeed), and evict/reactivate under `--max-resident 1`.
#
# Every daemon is stopped with SIGTERM and must exit 0 (graceful drain),
# never relying on default signal death.
#
# Artifacts (snapshots, expected/served CSVs) land in $E2E_DIR for CI to
# upload.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/iim}
TRAIN=tests/data/serve_train.csv
QUERIES=tests/data/serve_queries.csv
E2E_DIR=${E2E_DIR:-e2e}
PORT=${PORT:-17878}
K=5
SEED=42

mkdir -p "$E2E_DIR"
fail() { echo "FAIL: $*" >&2; exit 1; }

# Graceful shutdown: SIGTERM must drain in-flight work and exit 0; a
# non-zero status (including 143, death by unhandled SIGTERM) fails.
stop_daemon() {
  kill -TERM "$1"
  local code=0
  wait "$1" || code=$?
  [ "$code" = 0 ] || fail "daemon pid $1 exited $code after SIGTERM (want a clean 0)"
}

METHODS=$("$BIN" methods | sed 's/ (default)//')
echo "methods under test:" $METHODS

for m in $METHODS; do
  echo "=== $m ==="
  # Fresh port per method: the previous daemon's closed connections sit in
  # TIME_WAIT on its port, and TcpListener::bind (no SO_REUSEADDR) would
  # intermittently fail with EADDRINUSE if the port were reused.
  PORT=$((PORT + 1))
  snap="$E2E_DIR/$m.iim"
  expected="$E2E_DIR/$m.expected.csv"
  infit="$E2E_DIR/$m.infit.csv"
  served="$E2E_DIR/$m.served.csv"

  "$BIN" fit --save "$snap" --method "$m" --k $K --seed $SEED "$TRAIN"
  "$BIN" impute --model "$snap" --output "$expected" "$QUERIES"
  "$BIN" impute --fit-on "$TRAIN" --method "$m" --k $K --seed $SEED \
      --output "$infit" "$QUERIES"
  cmp "$expected" "$infit" \
    || fail "$m: snapshot serving diverged from the in-process fit"

  "$BIN" serve "$snap" --addr "127.0.0.1:$PORT" --threads 2 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  up=0
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
  done
  [ "$up" = 1 ] || fail "$m: daemon never became healthy"

  curl -sf "http://127.0.0.1:$PORT/info" | grep -q "\"method\":\"$m\"" \
    || fail "$m: /info does not report the method"
  # Keep-alive perf sanity: one curl invocation with three URLs must reuse
  # a single connection. The daemon counts accepted connections in /info,
  # so the delta across the probe is exactly 2 (the probe itself plus the
  # final /info read) — 4 would mean per-request connections are back.
  before=$(curl -sf "http://127.0.0.1:$PORT/info" \
    | grep -o '"connections":[0-9]*' | cut -d: -f2)
  curl -sf "http://127.0.0.1:$PORT/healthz" "http://127.0.0.1:$PORT/healthz" \
      "http://127.0.0.1:$PORT/healthz" > /dev/null \
    || fail "$m: keep-alive probe returned non-2xx"
  after=$(curl -sf "http://127.0.0.1:$PORT/info" \
    | grep -o '"connections":[0-9]*' | cut -d: -f2)
  [ "$((after - before))" = 2 ] \
    || fail "$m: keep-alive probe opened $((after - before - 1)) connections for 3 requests (want 1)"
  # Batch request: the whole query file in one POST.
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" > "$served" \
    || fail "$m: batch /impute returned non-2xx"
  cmp "$served" "$expected" \
    || fail "$m: daemon response diverged from iim impute output"
  # Single-tuple request: header + first query row.
  head -2 "$QUERIES" | curl -sf --data-binary @- "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.single.csv" \
    || fail "$m: single-tuple /impute returned non-2xx"
  head -2 "$expected" | cmp - "$E2E_DIR/$m.single.csv" \
    || fail "$m: single-tuple response diverged from the batch fill"

  stop_daemon $daemon
  trap - EXIT
done

echo "OK: every method round-tripped fit -> save -> load -> serve with byte-identical fills"

# --- Streaming leg: learn over HTTP, checkpoint, restart, byte-diff ---
#
# The absorb-supporting subset is pinned here; the workspace test
# `absorb_support_is_exact_over_the_lineup` keeps this list honest.
LEARN_ROWS="$E2E_DIR/learn_rows.csv"
printf 'a,b,c,d\n0.3,1.5,0.45,39.6\n0.72,1.9,0.81,39.25\n' > "$LEARN_ROWS"

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

for m in IIM Mean GLR; do
  echo "=== $m (learn) ==="
  snap="$E2E_DIR/$m.iim"
  live="$E2E_DIR/$m.learned.iim"
  ref="$E2E_DIR/$m.ref.iim"
  expected="$E2E_DIR/$m.expected_after.csv"

  # Single-process reference: absorb via the CLI (one delta record) and
  # impute through the replayed snapshot.
  cp "$snap" "$ref"
  "$BIN" learn --model "$ref" "$LEARN_ROWS"
  "$BIN" impute --model "$ref" --output "$expected" "$QUERIES"

  # Daemon: serve a copy with a checkpoint flushed after every learn,
  # then stream the same rows through POST /learn.
  cp "$snap" "$live"
  PORT=$((PORT + 1))
  "$BIN" serve "$live" --addr "127.0.0.1:$PORT" --threads 2 \
      --checkpoint-every 1 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  wait_healthy $PORT || fail "$m: learn daemon never became healthy"

  curl -sf --data-binary "@$LEARN_ROWS" "http://127.0.0.1:$PORT/learn" \
      | grep -q '"absorbed":2' \
    || fail "$m: /learn did not absorb both rows"
  curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":2' \
    || fail "$m: /info does not report the absorbed rows"
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.served_live.csv" \
    || fail "$m: post-learn /impute returned non-2xx"
  cmp "$E2E_DIR/$m.served_live.csv" "$expected" \
    || fail "$m: live post-learn fills diverged from the CLI reference"

  stop_daemon $daemon
  trap - EXIT

  # Restart from the checkpointed delta snapshot: the replayed model
  # must serve the same bytes as both the live daemon and the reference.
  PORT=$((PORT + 1))
  "$BIN" serve "$live" --addr "127.0.0.1:$PORT" --threads 2 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  wait_healthy $PORT || fail "$m: restarted daemon never became healthy"
  curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":2' \
    || fail "$m: restart lost the checkpointed absorbs"
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.served_restarted.csv" \
    || fail "$m: post-restart /impute returned non-2xx"
  cmp "$E2E_DIR/$m.served_restarted.csv" "$expected" \
    || fail "$m: delta-snapshot restart diverged from the CLI reference"
  stop_daemon $daemon
  trap - EXIT
done

echo "OK: learn -> checkpoint -> restart served byte-identical fills for every absorb-supporting method"

# --- Registry leg: multi-tenant serving, hot swap under load, eviction ---
#
# Two tenants staged from leg-1 snapshots; the per-model routes must serve
# byte-identical fills to the single-model daemons those snapshots backed.
echo "=== registry ==="
REG="$E2E_DIR/registry"
rm -rf "$REG"
mkdir -p "$REG"

"$BIN" registry stage --models-dir "$REG" alpha "$E2E_DIR/IIM.iim" \
  || fail "registry: CLI stage alpha failed"
"$BIN" registry stage --models-dir "$REG" beta "$E2E_DIR/Mean.iim" \
  || fail "registry: CLI stage beta failed"
# Capture first, grep second: `list | grep -q` lets grep exit on the first
# match and EPIPE the still-printing CLI (a pipefail failure even on success).
listing=$("$BIN" registry list --models-dir "$REG") \
  || fail "registry: CLI list failed"
printf '%s\n' "$listing" | grep -q "alpha" \
  || fail "registry: list does not show alpha"

PORT=$((PORT + 1))
"$BIN" serve --models-dir "$REG" --addr "127.0.0.1:$PORT" --threads 2 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "registry daemon never became healthy"

curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"mode":"registry"' \
  || fail "registry: /info does not report registry mode"

# Per-model serving, byte-diffed against the single-model references.
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > "$E2E_DIR/registry.alpha.csv" \
  || fail "registry: /models/alpha/impute returned non-2xx"
cmp "$E2E_DIR/registry.alpha.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "registry: alpha diverged from the single-model IIM daemon"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/beta/impute" \
    > "$E2E_DIR/registry.beta.csv" \
  || fail "registry: /models/beta/impute returned non-2xx"
cmp "$E2E_DIR/registry.beta.csv" "$E2E_DIR/Mean.expected.csv" \
  || fail "registry: beta diverged from the single-model Mean daemon"

# Unknown models and unknown routes answer with structured JSON errors.
curl -s "http://127.0.0.1:$PORT/models/ghost/info" | grep -q '"error":"unknown_model"' \
  || fail "registry: ghost model is not a structured 404"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/nope")
[ "$code" = "404" ] || fail "registry: unknown route returned $code, want 404"

# Hot swap under load: hammer alpha while PUTting the Mean snapshot over
# it and then the IIM snapshot back. Every request must succeed (the swap
# barrier drops nothing), and the settled tenant must serve IIM's bytes.
rm -f "$E2E_DIR/registry.swap_errors"
(
  for _ in $(seq 1 40); do
    curl -sf --data-binary "@$QUERIES" \
        "http://127.0.0.1:$PORT/models/alpha/impute" > /dev/null \
      || echo "request failed" >> "$E2E_DIR/registry.swap_errors"
  done
) &
hammer=$!
curl -sf -X PUT --data-binary "@$E2E_DIR/Mean.iim" \
    "http://127.0.0.1:$PORT/models/alpha" | grep -q '"swapped":true' \
  || fail "registry: hot swap to Mean did not report swapped:true"
curl -sf -X PUT --data-binary "@$E2E_DIR/IIM.iim" \
    "http://127.0.0.1:$PORT/models/alpha" | grep -q '"swapped":true' \
  || fail "registry: hot swap back to IIM did not report swapped:true"
wait $hammer
[ ! -e "$E2E_DIR/registry.swap_errors" ] \
  || fail "registry: a request failed during the hot swaps"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > "$E2E_DIR/registry.alpha_after_swap.csv" \
  || fail "registry: post-swap impute returned non-2xx"
cmp "$E2E_DIR/registry.alpha_after_swap.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "registry: post-swap alpha diverged from the IIM reference"

stop_daemon $daemon
trap - EXIT

# Eviction: with one resident slot, touching beta evicts alpha; touching
# alpha again reactivates it transparently with identical bytes.
PORT=$((PORT + 1))
"$BIN" serve --models-dir "$REG" --addr "127.0.0.1:$PORT" --threads 2 \
    --max-resident 1 &
daemon=$!
trap 'kill $daemon 2>/dev/null || true' EXIT
wait_healthy $PORT || fail "eviction daemon never became healthy"

curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > /dev/null || fail "eviction: warm-up impute on alpha failed"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/beta/impute" \
    > /dev/null || fail "eviction: impute on beta failed"
curl -sf "http://127.0.0.1:$PORT/models/alpha/info" | grep -q '"resident":false' \
  || fail "eviction: alpha still resident with max-resident 1"
curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/models/alpha/impute" \
    > "$E2E_DIR/registry.alpha_reactivated.csv" \
  || fail "eviction: reactivating impute on alpha failed"
cmp "$E2E_DIR/registry.alpha_reactivated.csv" "$E2E_DIR/IIM.expected.csv" \
  || fail "eviction: reactivated alpha diverged from the IIM reference"

stop_daemon $daemon
trap - EXIT

echo "OK: registry served both tenants byte-identically, hot-swapped under load with zero failures, and survived eviction"
