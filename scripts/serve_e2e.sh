#!/usr/bin/env bash
# End-to-end serving pipeline, run by CI and runnable locally:
#
#   cargo build --release --locked && scripts/serve_e2e.sh
#
# For EVERY method in the lineup (`iim methods`):
#   1. `iim fit --save`        — offline phase → snapshot on disk
#   2. `iim impute --model`    — stream queries through the loaded snapshot
#   3. `iim impute --fit-on`   — stream the same queries through an
#      in-process fit, and diff against (2) byte-for-byte: a snapshot is
#      the fitted model, not an approximation
#   4. `iim serve` in the background + curl the same queries (batch and
#      single-tuple) — diff the daemon's response against (2)
#      byte-for-byte; any non-2xx fails via curl -f
#   5. kill the daemon
#
# Then, for every absorb-supporting method (IIM, Mean, GLR), the
# streaming leg: serve with per-learn checkpointing, POST /learn, and
# byte-diff the daemon's post-learn fills — both live and after a
# restart from the checkpointed delta snapshot — against a
# single-process `iim learn` + `iim impute` reference.
#
# Artifacts (snapshots, expected/served CSVs) land in $E2E_DIR for CI to
# upload.

set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/iim}
TRAIN=tests/data/serve_train.csv
QUERIES=tests/data/serve_queries.csv
E2E_DIR=${E2E_DIR:-e2e}
PORT=${PORT:-17878}
K=5
SEED=42

mkdir -p "$E2E_DIR"
fail() { echo "FAIL: $*" >&2; exit 1; }

METHODS=$("$BIN" methods | sed 's/ (default)//')
echo "methods under test:" $METHODS

for m in $METHODS; do
  echo "=== $m ==="
  # Fresh port per method: the previous daemon's closed connections sit in
  # TIME_WAIT on its port, and TcpListener::bind (no SO_REUSEADDR) would
  # intermittently fail with EADDRINUSE if the port were reused.
  PORT=$((PORT + 1))
  snap="$E2E_DIR/$m.iim"
  expected="$E2E_DIR/$m.expected.csv"
  infit="$E2E_DIR/$m.infit.csv"
  served="$E2E_DIR/$m.served.csv"

  "$BIN" fit --save "$snap" --method "$m" --k $K --seed $SEED "$TRAIN"
  "$BIN" impute --model "$snap" --output "$expected" "$QUERIES"
  "$BIN" impute --fit-on "$TRAIN" --method "$m" --k $K --seed $SEED \
      --output "$infit" "$QUERIES"
  cmp "$expected" "$infit" \
    || fail "$m: snapshot serving diverged from the in-process fit"

  "$BIN" serve "$snap" --addr "127.0.0.1:$PORT" --threads 2 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  up=0
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
  done
  [ "$up" = 1 ] || fail "$m: daemon never became healthy"

  curl -sf "http://127.0.0.1:$PORT/info" | grep -q "\"method\":\"$m\"" \
    || fail "$m: /info does not report the method"
  # Batch request: the whole query file in one POST.
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" > "$served" \
    || fail "$m: batch /impute returned non-2xx"
  cmp "$served" "$expected" \
    || fail "$m: daemon response diverged from iim impute output"
  # Single-tuple request: header + first query row.
  head -2 "$QUERIES" | curl -sf --data-binary @- "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.single.csv" \
    || fail "$m: single-tuple /impute returned non-2xx"
  head -2 "$expected" | cmp - "$E2E_DIR/$m.single.csv" \
    || fail "$m: single-tuple response diverged from the batch fill"

  kill $daemon
  wait $daemon 2>/dev/null || true
  trap - EXIT
done

echo "OK: every method round-tripped fit -> save -> load -> serve with byte-identical fills"

# --- Streaming leg: learn over HTTP, checkpoint, restart, byte-diff ---
#
# The absorb-supporting subset is pinned here; the workspace test
# `absorb_support_is_exact_over_the_lineup` keeps this list honest.
LEARN_ROWS="$E2E_DIR/learn_rows.csv"
printf 'a,b,c,d\n0.3,1.5,0.45,39.6\n0.72,1.9,0.81,39.25\n' > "$LEARN_ROWS"

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

for m in IIM Mean GLR; do
  echo "=== $m (learn) ==="
  snap="$E2E_DIR/$m.iim"
  live="$E2E_DIR/$m.learned.iim"
  ref="$E2E_DIR/$m.ref.iim"
  expected="$E2E_DIR/$m.expected_after.csv"

  # Single-process reference: absorb via the CLI (one delta record) and
  # impute through the replayed snapshot.
  cp "$snap" "$ref"
  "$BIN" learn --model "$ref" "$LEARN_ROWS"
  "$BIN" impute --model "$ref" --output "$expected" "$QUERIES"

  # Daemon: serve a copy with a checkpoint flushed after every learn,
  # then stream the same rows through POST /learn.
  cp "$snap" "$live"
  PORT=$((PORT + 1))
  "$BIN" serve "$live" --addr "127.0.0.1:$PORT" --threads 2 \
      --checkpoint-every 1 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  wait_healthy $PORT || fail "$m: learn daemon never became healthy"

  curl -sf --data-binary "@$LEARN_ROWS" "http://127.0.0.1:$PORT/learn" \
      | grep -q '"absorbed":2' \
    || fail "$m: /learn did not absorb both rows"
  curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":2' \
    || fail "$m: /info does not report the absorbed rows"
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.served_live.csv" \
    || fail "$m: post-learn /impute returned non-2xx"
  cmp "$E2E_DIR/$m.served_live.csv" "$expected" \
    || fail "$m: live post-learn fills diverged from the CLI reference"

  kill $daemon
  wait $daemon 2>/dev/null || true
  trap - EXIT

  # Restart from the checkpointed delta snapshot: the replayed model
  # must serve the same bytes as both the live daemon and the reference.
  PORT=$((PORT + 1))
  "$BIN" serve "$live" --addr "127.0.0.1:$PORT" --threads 2 &
  daemon=$!
  trap 'kill $daemon 2>/dev/null || true' EXIT
  wait_healthy $PORT || fail "$m: restarted daemon never became healthy"
  curl -sf "http://127.0.0.1:$PORT/info" | grep -q '"absorbed":2' \
    || fail "$m: restart lost the checkpointed absorbs"
  curl -sf --data-binary "@$QUERIES" "http://127.0.0.1:$PORT/impute" \
      > "$E2E_DIR/$m.served_restarted.csv" \
    || fail "$m: post-restart /impute returned non-2xx"
  cmp "$E2E_DIR/$m.served_restarted.csv" "$expected" \
    || fail "$m: delta-snapshot restart diverged from the CLI reference"
  kill $daemon
  wait $daemon 2>/dev/null || true
  trap - EXIT
done

echo "OK: learn -> checkpoint -> restart served byte-identical fills for every absorb-supporting method"
