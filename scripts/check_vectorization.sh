#!/usr/bin/env bash
# Verifies the blocked distance kernels actually autovectorize: builds the
# `disasm_probe` example in release mode and asserts the probe symbols
# contain packed-double SIMD arithmetic (addpd/mulpd/subpd or their VEX/FMA
# forms), not just scalar *sd instructions.
#
# The kernels commit to a fixed summation order (4 lanes, documented in
# crates/neighbors/src/dist.rs); this script is the other half of that
# bargain — proof the fixed order still buys packed code on the current
# toolchain. Run it after touching dist.rs or bumping the toolchain.
#
#   scripts/check_vectorization.sh [--quiet]
set -euo pipefail
cd "$(dirname "$0")/.."

quiet=0
[ "${1:-}" = "--quiet" ] && quiet=1

cargo build --offline --release -p iim-neighbors --example disasm_probe >/dev/null

bin=target/release/examples/disasm_probe
[ -x "$bin" ] || { echo "error: $bin not built" >&2; exit 1; }

# Packed-double arithmetic, SSE2 (addpd) or AVX (vaddpd) or FMA
# (vfmadd231pd etc.). Scalar code would only emit the *sd forms.
packed_re='v?(add|sub|mul)pd|vfn?m(add|sub)[0-9]*pd'

disasm_sym() {
    objdump -d --demangle "$bin" | awk -v sym="$1" '
        $0 ~ ("<.*" sym ".*>:") {on=1; next}
        on && /^[0-9a-f]+ </ {on=0}
        on {print}
    '
}

fail=0
# Dense kernels: contiguous loads, must compile to packed-double SIMD.
for sym in probe_sq_dist_f probe_sq_dist_many; do
    asm=$(disasm_sym "$sym")
    if [ -z "$asm" ]; then
        echo "FAIL: symbol $sym not found in $bin" >&2
        fail=1
        continue
    fi
    packed=$(grep -cE "$packed_re" <<<"$asm" || true)
    if [ "$packed" -eq 0 ]; then
        echo "FAIL: $sym contains no packed-double SIMD ($packed_re)" >&2
        [ "$quiet" = 1 ] || grep -E 'pd|sd' <<<"$asm" | head -20 >&2
        fail=1
    else
        echo "OK: $sym — $packed packed-double instruction(s)"
    fi
done

# Gather kernel: indexed loads through `attrs` cannot use packed loads at
# baseline x86-64, so the 4-lane structure shows up as instruction-level
# parallelism instead — at least 4 independent scalar addsd chains in the
# unrolled body. A de-blocked (single-accumulator) regression would show
# exactly 1.
asm=$(disasm_sym probe_sq_dist_on)
if [ -z "$asm" ]; then
    echo "FAIL: symbol probe_sq_dist_on not found in $bin" >&2
    fail=1
else
    adds=$(grep -cE 'v?addsd' <<<"$asm" || true)
    if [ "$adds" -lt 4 ]; then
        echo "FAIL: probe_sq_dist_on has $adds addsd — 4-lane unroll collapsed" >&2
        [ "$quiet" = 1 ] || grep -E 'sd' <<<"$asm" | head -20 >&2
        fail=1
    else
        echo "OK: probe_sq_dist_on — $adds scalar adds (gather path, 4-lane ILP)"
    fi
fi

exit $fail
